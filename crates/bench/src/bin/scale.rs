//! Rank-scaling benchmark: simulator wall clock vs rank count for both
//! rank executors, written as JSON (`BENCH_PR8.json`) — the record of
//! what the discrete-event executor buys at scale.
//!
//! Each point runs the memory-conscious strategy on a fig7-shaped
//! platform (testbed nodes of 12 cores, 8 OSTs, Normal(320 MiB, 64 MiB)
//! per-node memory, IOR interleaved) with the per-rank volume scaled
//! down as ranks grow, so the axis measures executor overhead rather
//! than total data volume. The thread-per-rank oracle runs where one
//! OS thread per rank is still feasible; wherever both engines run a
//! point, their virtual times must agree bit for bit.
//!
//! ```text
//! cargo run --release -p mccio-bench --bin scale [full|ci|10k|100k|obs|causal] [--obs] [out.json]
//! ```
//!
//! * `full` (default) — 120 / 1008 / 10080 / 100800 ranks, both
//!   executors up to the thread ceiling; writes the JSON record;
//! * `ci` — the 1008-rank event-executor smoke, bounded for CI;
//! * `10k` — the 10080-rank event-executor point alone;
//! * `100k` — the 100800-rank event-executor point alone (the
//!   allocation-free hot-path acceptance gate);
//! * `obs` — the streaming-observability flagship: the 10k and 100k
//!   fig7 shapes with a streaming `ObsSink` and the host-wall profiler
//!   on, asserting virtual-time bit-identity obs on/off, bounded obs
//!   allocations, and host-wall overhead under threshold; writes
//!   `BENCH_PR9.json` plus per-point HTML reports under `trace_obs/`;
//! * `causal` — the causal-tracing flagship: the 10k fig7 shape under
//!   a deterministic 5 µs control-plane latency (so clocks genuinely
//!   diverge and blame chains hop ranks) with a *streaming* sink and
//!   causal tracing armed, asserting virtual-time bit-identity causal
//!   on/off, the same fixed obs allocation budget, host-wall overhead
//!   under threshold, and non-degenerate cross-rank blame chains;
//!   writes `BENCH_PR10.json` plus an HTML report under `trace_obs/`.
//!
//! `--obs` attaches the same streaming-observability comparison to any
//! mode (CI runs `scale ci --obs` as its bounded-memory smoke).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mccio_bench::{paper_pair, run_on, run_on_traced, run_on_traced_faulty, Platform};
use mccio_net::ExecutorKind;
use mccio_obs::{analyze, report, ObsSink, StreamConfig};
use mccio_sim::fault::FaultPlan;
use mccio_sim::hostprof::{self, HostProfile};
use mccio_sim::time::VDuration;
use mccio_sim::units::{KIB, MIB};
use mccio_workloads::Ior;

/// Largest rank count the thread-per-rank oracle is asked to run: one
/// OS thread per rank stops being feasible long before 10k ranks (stack
/// reservation and scheduler pressure), which is the point of the event
/// executor.
const THREADS_MAX_RANKS: usize = 2048;

/// Counting wrapper around the system allocator (diagnostic; printed
/// per point so allocation churn regressions are visible in the log).
struct CountingAlloc;

static TRACE_BUCKET: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(usize::MAX);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);

static SIZE_HIST: [AtomicU64; 33] = [const { AtomicU64::new(0) }; 33];
static SIZE_BYTES: [AtomicU64; 33] = [const { AtomicU64::new(0) }; 33];

thread_local! {
    static IN_TRACE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        if layout.size() >= 128 * 1024 {
            BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        let b = (64 - (layout.size() as u64).leading_zeros() as usize).min(32);
        let n = SIZE_HIST[b].fetch_add(1, Ordering::Relaxed);
        SIZE_BYTES[b].fetch_add(layout.size() as u64, Ordering::Relaxed);
        if TRACE_BUCKET.load(Ordering::Relaxed) == b
            && n % 5_000 == 7
            && IN_TRACE.with(|f| !f.replace(true))
        {
            eprintln!(
                "--- alloc {} bytes (bucket {b}) ---\n{}",
                layout.size(),
                std::backtrace::Backtrace::force_capture()
            );
            IN_TRACE.with(|f| f.set(false));
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    // Forward instead of inheriting the defaults: the default
    // `alloc_zeroed` is alloc + memset, which defeats lazily-zeroed
    // calloc mappings and would charge giant one-shot buffers (the
    // coroutine stack slab, the file image) with an eager fault storm
    // the real program never pays.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        if layout.size() >= 128 * 1024 {
            BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        let b = (64 - (layout.size() as u64).leading_zeros() as usize).min(32);
        SIZE_HIST[b].fetch_add(1, Ordering::Relaxed);
        SIZE_BYTES[b].fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn dump_size_hist() {
    for b in 0..33 {
        let n = SIZE_HIST[b].load(Ordering::Relaxed);
        if n > 0 {
            eprintln!(
                "  size<2^{b:<2} n={n:<10} {} MiB",
                SIZE_BYTES[b].load(Ordering::Relaxed) / (1024 * 1024)
            );
        }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
        BIG_ALLOCS.load(Ordering::Relaxed),
    )
}

/// One point on the rank axis. Volume shrinks as ranks grow: group
/// analysis memory is O(ranks) per rank, and the axis measures executor
/// overhead, not aggregate bandwidth.
struct Point {
    ranks: usize,
    per_rank_kib: u64,
    segments: u64,
}

fn points(mode: &str) -> Vec<Point> {
    let p = |ranks, per_rank_kib, segments| Point {
        ranks,
        per_rank_kib,
        segments,
    };
    match mode {
        // The fig7 config, then three decades up it.
        "full" => vec![
            p(120, 4096, 16),
            p(1008, 512, 8),
            p(10_080, 64, 2),
            p(100_800, 16, 1),
        ],
        "ci" => vec![p(1008, 256, 4)],
        "fig7" => vec![p(120, 4096, 16)],
        "10k" => vec![p(10_080, 64, 2)],
        "100k" => vec![p(100_800, 16, 1)],
        // The streaming-observability flagship pair (ISSUE 9).
        "obs" => vec![p(10_080, 64, 2), p(100_800, 16, 1)],
        // The causal-tracing flagship (ISSUE 10): the 10k fig7 shape.
        "causal" => vec![p(10_080, 64, 2)],
        other => panic!("scale: unknown mode {other:?} (use full|ci|fig7|10k|100k|obs|causal)"),
    }
}

struct Row {
    ranks: usize,
    executor: ExecutorKind,
    per_rank_kib: u64,
    segments: u64,
    wall_secs: f64,
    write_secs: f64,
    read_secs: f64,
    write_mbps: f64,
    read_mbps: f64,
}

/// Fixed budget for observability allocations in an obs-on run: the
/// streaming sink, its aggregation cells, and the exemplar lanes must
/// fit in this regardless of rank count — the bound that makes
/// 100k-rank observability feasible. Measured as the allocated-bytes
/// delta between a warm obs-on run and a warm obs-off run.
const OBS_ALLOC_BUDGET_BYTES: u64 = 64 * 1024 * 1024;

/// Host-wall overhead threshold for streaming observability at the
/// 10k+ flagship shapes (the ISSUE 9 acceptance gate).
const OBS_MAX_OVERHEAD: f64 = 0.10;

/// Exemplar rank lanes the streaming sink keeps at full fidelity.
const OBS_EXEMPLARS: u32 = 8;

fn main() {
    if let Ok(b) = std::env::var("SCALE_TRACE_BUCKET") {
        if let Ok(b) = b.parse::<usize>() {
            TRACE_BUCKET.store(b, Ordering::Relaxed);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs_flag = args.iter().any(|a| a == "--obs");
    let positional: Vec<&String> = args.iter().filter(|a| *a != "--obs").collect();
    let mode = positional
        .first()
        .map_or_else(|| "full".to_string(), |s| (*s).clone());
    if mode == "causal" {
        let out_path = positional
            .get(1)
            .map_or_else(|| "BENCH_PR10.json".to_string(), |s| (*s).clone());
        run_causal(&mode, &out_path);
        return;
    }
    if obs_flag || mode == "obs" {
        let out_path = positional
            .get(1)
            .map_or_else(|| "BENCH_PR9.json".to_string(), |s| (*s).clone());
        run_obs(&mode, &out_path);
        return;
    }
    let out_path = positional
        .get(1)
        .map_or_else(|| "BENCH_PR8.json".to_string(), |s| (*s).clone());
    let event_only = mode != "full" && mode != "fig7";

    let mut rows: Vec<Row> = Vec::new();
    for point in points(&mode) {
        let Point {
            ranks,
            per_rank_kib,
            segments,
        } = point;
        let platform = Platform::testbed(ranks / 12, ranks, 8).with_memory(320 * MIB, 64 * MIB);
        let workload = Ior::interleaved_total(per_rank_kib * KIB, segments);
        // The figure pair's memory-conscious half — the paper's subject.
        let [_, (name, strategy)] = paper_pair(&platform, 4 * MIB);
        let mut executors = vec![ExecutorKind::Event];
        if !event_only && ranks <= THREADS_MAX_RANKS {
            executors.push(ExecutorKind::Threads);
        }
        for executor in executors {
            eprintln!(
                "scale[{mode}]: {ranks} ranks x {per_rank_kib} KiB, {name}, {executor:?} ..."
            );
            let a0 = alloc_snapshot();
            let t0 = Instant::now();
            let r = run_on(&workload, &*strategy, &platform, executor);
            let wall = t0.elapsed().as_secs_f64();
            let a1 = alloc_snapshot();
            eprintln!(
                "  allocs {} ({} MiB, {} >=128KiB)",
                a1.0 - a0.0,
                (a1.1 - a0.1) / (1024 * 1024),
                a1.2 - a0.2
            );
            if std::env::var_os("SCALE_ALLOC_HIST").is_some() {
                dump_size_hist();
            }
            eprintln!(
                "  {wall:.3}s wall, virtual write {:.6}s, rounds {}, shuffle {} MiB, msgs {}",
                r.write_secs,
                r.metrics.rounds,
                r.metrics.shuffle_bytes / (1024 * 1024),
                r.traffic.data_msgs + r.traffic.ctl_msgs
            );
            eprintln!(
                "  pool hits {} misses {}, recycler takes {} returns {}, peak held {} KiB",
                r.metrics.pool_hits,
                r.metrics.pool_misses,
                r.metrics.recycle_takes,
                r.metrics.recycle_returns,
                r.metrics.payload_peak_bytes / 1024
            );
            rows.push(Row {
                ranks,
                executor,
                per_rank_kib,
                segments,
                wall_secs: wall,
                write_secs: r.write_secs,
                read_secs: r.read_secs,
                write_mbps: r.write_mbps(),
                read_mbps: r.read_mbps(),
            });
        }
    }

    // Wherever both engines ran a point, their virtual times must agree
    // bit for bit — the scale bench doubles as a large-rank differential
    // check the unit suites can't afford.
    for ranks in rows.iter().map(|r| r.ranks).collect::<Vec<_>>() {
        let of = |kind: ExecutorKind| rows.iter().find(|r| r.ranks == ranks && r.executor == kind);
        if let (Some(e), Some(t)) = (of(ExecutorKind::Event), of(ExecutorKind::Threads)) {
            assert_eq!(
                e.write_secs.to_bits(),
                t.write_secs.to_bits(),
                "{ranks} ranks: executors disagree on virtual write time"
            );
            assert_eq!(
                e.read_secs.to_bits(),
                t.read_secs.to_bits(),
                "{ranks} ranks: executors disagree on virtual read time"
            );
        }
    }

    let json = render_json(&mode, &rows);
    if mode == "full" {
        std::fs::write(&out_path, &json).expect("write bench json");
        eprintln!("scale: wrote {out_path}");
    }
    println!("{json}");
}

/// One obs-comparison point: the same shape run obs-off then obs-on
/// (streaming sink + host profiler), both warm.
struct ObsRow {
    ranks: usize,
    per_rank_kib: u64,
    segments: u64,
    wall_off: f64,
    wall_obs: f64,
    write_secs: f64,
    read_secs: f64,
    obs_allocs: u64,
    obs_bytes: u64,
    retained: u64,
    folded: u64,
    cells: usize,
    profile: HostProfile,
}

impl ObsRow {
    fn overhead(&self) -> f64 {
        if self.wall_off > 0.0 {
            (self.wall_obs - self.wall_off) / self.wall_off
        } else {
            0.0
        }
    }
}

/// The streaming-observability comparison (`scale obs` / `--obs`): per
/// point, one warmup run, one measured obs-off run, one measured obs-on
/// run with a streaming sink and the host profiler. Asserts virtual
/// bit-identity, the fixed obs allocation budget, and (at 10k+ ranks)
/// the host-wall overhead threshold; writes one HTML report per point
/// under `trace_obs/` and the JSON record when mode is `obs`.
fn run_obs(mode: &str, out_path: &str) {
    std::fs::create_dir_all("trace_obs").expect("create trace_obs");
    let mut rows: Vec<ObsRow> = Vec::new();
    for point in points(mode) {
        let Point {
            ranks,
            per_rank_kib,
            segments,
        } = point;
        let platform = Platform::testbed(ranks / 12, ranks, 8).with_memory(320 * MIB, 64 * MIB);
        let workload = Ior::interleaved_total(per_rank_kib * KIB, segments);
        let [_, (name, strategy)] = paper_pair(&platform, 4 * MIB);
        eprintln!("scale[{mode} --obs]: {ranks} ranks x {per_rank_kib} KiB, {name}, Event ...");

        // Warmup: commit the coroutine stack slab and allocator pools so
        // neither measured run pays first-touch faults the other skips.
        let _ = run_on(&workload, &*strategy, &platform, ExecutorKind::Event);

        let a0 = alloc_snapshot();
        let t0 = Instant::now();
        let off = run_on(&workload, &*strategy, &platform, ExecutorKind::Event);
        let wall_off = t0.elapsed().as_secs_f64();
        let a1 = alloc_snapshot();

        hostprof::reset();
        hostprof::set_enabled(true);
        let sink = ObsSink::streaming(StreamConfig::for_ranks(ranks, OBS_EXEMPLARS));
        let a2 = alloc_snapshot();
        let t1 = Instant::now();
        let on = run_on_traced(&workload, &*strategy, &platform, ExecutorKind::Event, &sink);
        let wall_obs = t1.elapsed().as_secs_f64();
        let a3 = alloc_snapshot();
        hostprof::set_enabled(false);
        let mut profile = hostprof::snapshot();
        profile.wall_secs = wall_obs;
        profile.virtual_secs = on.write_secs + on.read_secs;

        // Acceptance: observability must not move virtual time by a bit.
        assert_eq!(
            off.write_secs.to_bits(),
            on.write_secs.to_bits(),
            "{ranks} ranks: streaming obs moved virtual write time"
        );
        assert_eq!(
            off.read_secs.to_bits(),
            on.read_secs.to_bits(),
            "{ranks} ranks: streaming obs moved virtual read time"
        );

        // Acceptance: obs allocations fit the fixed, rank-independent
        // budget (delta of the two warm runs' allocation deltas).
        let obs_allocs = (a3.0 - a2.0).saturating_sub(a1.0 - a0.0);
        let obs_bytes = (a3.1 - a2.1).saturating_sub(a1.1 - a0.1);
        assert!(
            obs_bytes <= OBS_ALLOC_BUDGET_BYTES,
            "{ranks} ranks: obs allocations {obs_bytes} B exceed the fixed \
             {OBS_ALLOC_BUDGET_BYTES} B budget"
        );

        let overhead = (wall_obs - wall_off) / wall_off;
        if ranks >= 10_000 {
            assert!(
                overhead < OBS_MAX_OVERHEAD,
                "{ranks} ranks: streaming obs host-wall overhead {:.1}% exceeds {:.0}%",
                overhead * 100.0,
                OBS_MAX_OVERHEAD * 100.0
            );
        }

        let agg = sink
            .stream_stats()
            .expect("streaming sink has an aggregate");
        assert!(agg.folded_events > 0, "streaming sink folded nothing");
        eprintln!(
            "  off {wall_off:.3}s, obs {wall_obs:.3}s ({:+.1}%), \
             obs allocs {obs_allocs} ({} KiB)",
            overhead * 100.0,
            obs_bytes / 1024
        );
        eprintln!(
            "  stream: {} folded into {} cells, {} retained; virtual write {:.6}s",
            agg.folded_events,
            agg.cell_count(),
            agg.retained_events,
            on.write_secs
        );
        for p in &profile.phases {
            if p.calls > 0 {
                eprintln!(
                    "  host {}: {} calls, {:.3} ms",
                    p.name,
                    p.calls,
                    p.secs() * 1e3
                );
            }
        }

        // The streamed trace still analyzes and reports: engine spans
        // are exact, exemplar lanes render, the streaming and host
        // sections carry the folded bulk.
        let analysis = analyze::TraceAnalysis::of_sink(&sink)
            .expect("streamed trace analyzes")
            .with_host_profile(profile.clone());
        let events: Vec<analyze::TraceEvent> = sink.with_events(|live| {
            let mut refs: Vec<&mccio_obs::Event> = live.iter().collect();
            refs.sort_by(|a, b| {
                (a.track, a.kind.at().as_secs(), a.seq)
                    .partial_cmp(&(b.track, b.kind.at().as_secs(), b.seq))
                    .expect("virtual times are finite")
            });
            refs.into_iter()
                .map(analyze::TraceEvent::from_live)
                .collect()
        });
        let title = format!("mccio scale --obs — {ranks} ranks / {name}");
        let html = report::render(&title, &events, &analysis, None);
        let path = format!("trace_obs/scale_obs_{ranks}.html");
        std::fs::write(&path, &html).expect("write obs report");
        eprintln!("  wrote {path} ({} bytes)", html.len());

        rows.push(ObsRow {
            ranks,
            per_rank_kib,
            segments,
            wall_off,
            wall_obs,
            write_secs: on.write_secs,
            read_secs: on.read_secs,
            obs_allocs,
            obs_bytes,
            retained: agg.retained_events,
            folded: agg.folded_events,
            cells: agg.cell_count(),
            profile,
        });
    }

    // Bounded independent of rank count: the budget is fixed, so every
    // point passing it is the rank-independence assert; additionally the
    // aggregate cell count must not scale with ranks across points.
    if let (Some(small), Some(big)) = (rows.first(), rows.last()) {
        if big.ranks > small.ranks {
            let rank_factor = big.ranks as f64 / small.ranks as f64;
            assert!(
                (big.cells as f64) < (small.cells as f64) * rank_factor / 2.0,
                "stream cells scale with ranks: {} cells at {} ranks vs {} at {}",
                big.cells,
                big.ranks,
                small.cells,
                small.ranks
            );
        }
    }

    let json = render_obs_json(mode, &rows);
    if mode == "obs" {
        std::fs::write(out_path, &json).expect("write obs bench json");
        eprintln!("scale: wrote {out_path}");
    }
    std::fs::write("trace_obs/scale_obs.json", &json).expect("write obs json artifact");
    println!("{json}");
}

/// Deterministic control-plane latency for the causal flagship. The
/// engine's phases are root-priced, so without real message latency all
/// clocks move in lock-step and blame chains never hop ranks; a few
/// microseconds of ctl latency genuinely advances receiver clocks.
const CAUSAL_CTL_DELAY_MICROS: f64 = 5.0;

/// Seed for the causal plan (it carries only the deterministic ctl
/// delay; no random faults fire).
const CAUSAL_SEED: u64 = 0xCA05;

fn causal_plan() -> FaultPlan {
    FaultPlan::new(CAUSAL_SEED).delay_control(VDuration::from_micros(CAUSAL_CTL_DELAY_MICROS))
}

/// One causal-comparison point: the same shape and fault plan run with
/// causal tracing off (streaming obs absent entirely) then on.
struct CausalRow {
    ranks: usize,
    per_rank_kib: u64,
    segments: u64,
    wall_off: f64,
    wall_obs: f64,
    write_secs: f64,
    read_secs: f64,
    obs_allocs: u64,
    obs_bytes: u64,
    retained: u64,
    folded: u64,
    cells: usize,
    chains: usize,
    hops: usize,
    wait_secs: f64,
    work_secs: f64,
    nodes_created: u64,
    live_nodes: usize,
    slack_deliveries: u64,
    profile: HostProfile,
}

impl CausalRow {
    fn overhead(&self) -> f64 {
        if self.wall_off > 0.0 {
            (self.wall_obs - self.wall_off) / self.wall_off
        } else {
            0.0
        }
    }
}

/// The causal-tracing flagship (`scale causal`): per point, one warmup
/// run, one measured obs-off run, one measured run with a streaming
/// sink, causal tracing, and the host profiler on — all under the same
/// deterministic control-delay plan, so the comparison is apples to
/// apples. Asserts virtual bit-identity, the fixed obs allocation
/// budget, the host-wall overhead threshold, and non-degenerate blame
/// chains (cross-rank hops, exact tiling, clean in-flight table);
/// writes the JSON record and an HTML report under `trace_obs/`.
fn run_causal(mode: &str, out_path: &str) {
    std::fs::create_dir_all("trace_obs").expect("create trace_obs");
    let mut rows: Vec<CausalRow> = Vec::new();
    for point in points(mode) {
        let Point {
            ranks,
            per_rank_kib,
            segments,
        } = point;
        let platform = Platform::testbed(ranks / 12, ranks, 8).with_memory(320 * MIB, 64 * MIB);
        let workload = Ior::interleaved_total(per_rank_kib * KIB, segments);
        let [_, (name, strategy)] = paper_pair(&platform, 4 * MIB);
        eprintln!("scale[causal]: {ranks} ranks x {per_rank_kib} KiB, {name}, Event ...");

        // Warmup: commit the coroutine stack slab and allocator pools so
        // neither measured run pays first-touch faults the other skips.
        let _ = run_on_traced_faulty(
            &workload,
            &*strategy,
            &platform,
            ExecutorKind::Event,
            &ObsSink::disabled(),
            causal_plan(),
        );

        let a0 = alloc_snapshot();
        let t0 = Instant::now();
        let off = run_on_traced_faulty(
            &workload,
            &*strategy,
            &platform,
            ExecutorKind::Event,
            &ObsSink::disabled(),
            causal_plan(),
        );
        let wall_off = t0.elapsed().as_secs_f64();
        let a1 = alloc_snapshot();

        hostprof::reset();
        hostprof::set_enabled(true);
        let sink = ObsSink::streaming(StreamConfig::for_ranks(ranks, OBS_EXEMPLARS)).with_causal();
        let a2 = alloc_snapshot();
        let t1 = Instant::now();
        let on = run_on_traced_faulty(
            &workload,
            &*strategy,
            &platform,
            ExecutorKind::Event,
            &sink,
            causal_plan(),
        );
        let wall_obs = t1.elapsed().as_secs_f64();
        let a3 = alloc_snapshot();
        hostprof::set_enabled(false);
        let mut profile = hostprof::snapshot();
        profile.wall_secs = wall_obs;
        profile.virtual_secs = on.write_secs + on.read_secs;

        // Acceptance: causal tracing must not move virtual time by a bit.
        assert_eq!(
            off.write_secs.to_bits(),
            on.write_secs.to_bits(),
            "{ranks} ranks: causal tracing moved virtual write time"
        );
        assert_eq!(
            off.read_secs.to_bits(),
            on.read_secs.to_bits(),
            "{ranks} ranks: causal tracing moved virtual read time"
        );

        // Acceptance: the streaming sink *plus the causal fold* still
        // fits the fixed, rank-independent obs allocation budget.
        let obs_allocs = (a3.0 - a2.0).saturating_sub(a1.0 - a0.0);
        let obs_bytes = (a3.1 - a2.1).saturating_sub(a1.1 - a0.1);
        assert!(
            obs_bytes <= OBS_ALLOC_BUDGET_BYTES,
            "{ranks} ranks: causal obs allocations {obs_bytes} B exceed the fixed \
             {OBS_ALLOC_BUDGET_BYTES} B budget"
        );

        let overhead = (wall_obs - wall_off) / wall_off;
        if ranks >= 10_000 {
            assert!(
                overhead < OBS_MAX_OVERHEAD,
                "{ranks} ranks: causal obs host-wall overhead {:.1}% exceeds {:.0}%",
                overhead * 100.0,
                OBS_MAX_OVERHEAD * 100.0
            );
        }

        // Acceptance: the online DP settled clean, stayed bounded, and
        // recorded non-degenerate cross-rank chains that tile exactly.
        let agg = sink.causal().expect("causal tracing is armed");
        assert_eq!(
            agg.inflight_len(),
            0,
            "{ranks} ranks: messages still in flight after the run"
        );
        assert!(
            agg.nodes_created() > 0,
            "{ranks} ranks: no deliveries bound — the control delay skewed nothing"
        );
        assert!(
            agg.live_nodes() as u64 <= agg.nodes_created(),
            "{ranks} ranks: live frontier exceeds nodes created"
        );
        let chains = sink.causal_chains();
        assert!(
            !chains.is_empty(),
            "{ranks} ranks: no blame chains recorded"
        );
        for (i, chain) in chains.iter().enumerate() {
            chain
                .verify_tiling()
                .unwrap_or_else(|e| panic!("{ranks} ranks: chain {i} does not tile: {e}"));
            assert!(
                chain.hops() > 0,
                "{ranks} ranks: chain {i} never leaves rank 0"
            );
        }
        let hops: usize = chains.iter().map(mccio_obs::BlameChain::hops).sum();
        let wait_secs: f64 = chains.iter().map(mccio_obs::BlameChain::wait_secs).sum();
        let work_secs: f64 = chains.iter().map(mccio_obs::BlameChain::work_secs).sum();

        let stream = sink
            .stream_stats()
            .expect("streaming sink has an aggregate");
        eprintln!(
            "  off {wall_off:.3}s, causal {wall_obs:.3}s ({:+.1}%), \
             obs allocs {obs_allocs} ({} KiB)",
            overhead * 100.0,
            obs_bytes / 1024
        );
        eprintln!(
            "  causal: {} chain(s), {hops} hop(s), wait {wait_secs:.6}s / work {work_secs:.6}s, \
             {} node(s) created ({} live), {} slack deliveries",
            chains.len(),
            agg.nodes_created(),
            agg.live_nodes(),
            agg.slack_deliveries()
        );
        for p in &profile.phases {
            if p.calls > 0 {
                eprintln!(
                    "  host {}: {} calls, {:.3} ms",
                    p.name,
                    p.calls,
                    p.secs() * 1e3
                );
            }
        }

        // The streamed causal trace still analyzes and reports: the
        // report carries the blame-chain and what-if sections.
        let analysis = analyze::TraceAnalysis::of_sink(&sink)
            .expect("streamed causal trace analyzes")
            .with_host_profile(profile.clone());
        assert!(
            analysis.causal.as_ref().is_some_and(|c| !c.is_empty()),
            "{ranks} ranks: analysis carries no causal layer"
        );
        let events: Vec<analyze::TraceEvent> = sink.with_events(|live| {
            let mut refs: Vec<&mccio_obs::Event> = live.iter().collect();
            refs.sort_by(|a, b| {
                (a.track, a.kind.at().as_secs(), a.seq)
                    .partial_cmp(&(b.track, b.kind.at().as_secs(), b.seq))
                    .expect("virtual times are finite")
            });
            refs.into_iter()
                .map(analyze::TraceEvent::from_live)
                .collect()
        });
        let title = format!("mccio scale causal — {ranks} ranks / {name}");
        let html = report::render(&title, &events, &analysis, None);
        let path = format!("trace_obs/scale_causal_{ranks}.html");
        std::fs::write(&path, &html).expect("write causal report");
        eprintln!("  wrote {path} ({} bytes)", html.len());

        rows.push(CausalRow {
            ranks,
            per_rank_kib,
            segments,
            wall_off,
            wall_obs,
            write_secs: on.write_secs,
            read_secs: on.read_secs,
            obs_allocs,
            obs_bytes,
            retained: stream.retained_events,
            folded: stream.folded_events,
            cells: stream.cell_count(),
            chains: chains.len(),
            hops,
            wait_secs,
            work_secs,
            nodes_created: agg.nodes_created(),
            live_nodes: agg.live_nodes(),
            slack_deliveries: agg.slack_deliveries(),
            profile,
        });
    }

    let json = render_causal_json(mode, &rows);
    std::fs::write(out_path, &json).expect("write causal bench json");
    eprintln!("scale: wrote {out_path}");
    std::fs::write("trace_obs/scale_causal.json", &json).expect("write causal json artifact");
    println!("{json}");
}

/// Hand-rolled JSON for the causal comparison rows.
fn render_causal_json(mode: &str, rows: &[CausalRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"scale-causal\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"workload\": \"ior-interleaved\",");
    let _ = writeln!(out, "  \"strategy\": \"memory-conscious\",");
    let _ = writeln!(out, "  \"executor\": \"event\",");
    let _ = writeln!(out, "  \"ctl_delay_micros\": {CAUSAL_CTL_DELAY_MICROS},");
    let _ = writeln!(
        out,
        "  \"obs_alloc_budget_bytes\": {OBS_ALLOC_BUDGET_BYTES},"
    );
    let _ = writeln!(out, "  \"obs_max_overhead\": {OBS_MAX_OVERHEAD},");
    let _ = writeln!(out, "  \"exemplar_lanes\": {OBS_EXEMPLARS},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let mut host = String::new();
        for (j, p) in r.profile.phases.iter().filter(|p| p.calls > 0).enumerate() {
            if j > 0 {
                host.push_str(", ");
            }
            let _ = write!(
                host,
                "{{\"phase\": \"{}\", \"calls\": {}, \"host_ms\": {:.3}}}",
                p.name,
                p.calls,
                p.secs() * 1e3
            );
        }
        let _ = writeln!(
            out,
            "    {{\"ranks\": {}, \"per_rank_kib\": {}, \"segments\": {}, \
             \"wall_secs_off\": {:.3}, \"wall_secs_obs\": {:.3}, \
             \"overhead_pct\": {:.2}, \
             \"obs_allocs\": {}, \"obs_alloc_bytes\": {}, \
             \"events_folded\": {}, \"events_retained\": {}, \"stream_cells\": {}, \
             \"virtual_write_secs\": {:.9}, \"virtual_read_secs\": {:.9}, \
             \"chains\": {}, \"chain_hops\": {}, \
             \"chain_wait_secs\": {:.9}, \"chain_work_secs\": {:.9}, \
             \"nodes_created\": {}, \"live_nodes\": {}, \"slack_deliveries\": {}, \
             \"host_profile\": [{host}]}}{comma}",
            r.ranks,
            r.per_rank_kib,
            r.segments,
            r.wall_off,
            r.wall_obs,
            r.overhead() * 100.0,
            r.obs_allocs,
            r.obs_bytes,
            r.folded,
            r.retained,
            r.cells,
            r.write_secs,
            r.read_secs,
            r.chains,
            r.hops,
            r.wait_secs,
            r.work_secs,
            r.nodes_created,
            r.live_nodes,
            r.slack_deliveries,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Hand-rolled JSON for the obs comparison rows.
fn render_obs_json(mode: &str, rows: &[ObsRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"scale-obs\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"workload\": \"ior-interleaved\",");
    let _ = writeln!(out, "  \"strategy\": \"memory-conscious\",");
    let _ = writeln!(out, "  \"executor\": \"event\",");
    let _ = writeln!(
        out,
        "  \"obs_alloc_budget_bytes\": {OBS_ALLOC_BUDGET_BYTES},"
    );
    let _ = writeln!(out, "  \"obs_max_overhead\": {OBS_MAX_OVERHEAD},");
    let _ = writeln!(out, "  \"exemplar_lanes\": {OBS_EXEMPLARS},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let mut host = String::new();
        for (j, p) in r.profile.phases.iter().filter(|p| p.calls > 0).enumerate() {
            if j > 0 {
                host.push_str(", ");
            }
            let _ = write!(
                host,
                "{{\"phase\": \"{}\", \"calls\": {}, \"host_ms\": {:.3}}}",
                p.name,
                p.calls,
                p.secs() * 1e3
            );
        }
        let _ = writeln!(
            out,
            "    {{\"ranks\": {}, \"per_rank_kib\": {}, \"segments\": {}, \
             \"wall_secs_off\": {:.3}, \"wall_secs_obs\": {:.3}, \
             \"overhead_pct\": {:.2}, \
             \"obs_allocs\": {}, \"obs_alloc_bytes\": {}, \
             \"events_folded\": {}, \"events_retained\": {}, \"stream_cells\": {}, \
             \"virtual_write_secs\": {:.9}, \"virtual_read_secs\": {:.9}, \
             \"host_profile\": [{host}]}}{comma}",
            r.ranks,
            r.per_rank_kib,
            r.segments,
            r.wall_off,
            r.wall_obs,
            r.overhead() * 100.0,
            r.obs_allocs,
            r.obs_bytes,
            r.folded,
            r.retained,
            r.cells,
            r.write_secs,
            r.read_secs,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Hand-rolled JSON (the workspace is dependency-free by design).
fn render_json(mode: &str, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"scale\",");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    let _ = writeln!(out, "  \"workload\": \"ior-interleaved\",");
    let _ = writeln!(out, "  \"strategy\": \"memory-conscious\",");
    let _ = writeln!(out, "  \"points\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let executor = match r.executor {
            ExecutorKind::Event => "event",
            ExecutorKind::Threads => "threads",
        };
        let _ = writeln!(
            out,
            "    {{\"ranks\": {}, \"executor\": \"{executor}\", \
             \"per_rank_kib\": {}, \"segments\": {}, \
             \"wall_secs\": {:.3}, \
             \"virtual_write_secs\": {:.9}, \"virtual_read_secs\": {:.9}, \
             \"virtual_write_mbps\": {:.1}, \"virtual_read_mbps\": {:.1}}}{comma}",
            r.ranks,
            r.per_rank_kib,
            r.segments,
            r.wall_secs,
            r.write_secs,
            r.read_secs,
            r.write_mbps,
            r.read_mbps,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}
