//! Reproduces Table 1: the 2010 petascale vs projected 2018 exascale
//! design comparison, with the factor-change column and the paper's
//! memory-per-core formula `f_M / (f_S · f_C)`.
//!
//! ```text
//! cargo run -p mccio-bench --bin table1
//! ```

use mccio_sim::projection::{memory_per_core_factor, render_table1, DesignPoint};
use mccio_sim::units::fmt_bytes;

fn main() {
    println!("Table 1: potential exascale computer design vs current HPC designs");
    println!("==================================================================");
    print!("{}", render_table1());

    let a = DesignPoint::petascale_2010();
    let b = DesignPoint::exascale_2018();
    println!();
    println!("derived pressure metrics the paper argues from:");
    println!(
        "  memory per core       : {} -> {}  (factor {:.4})",
        fmt_bytes(a.memory_per_core() as u64),
        fmt_bytes(b.memory_per_core() as u64),
        memory_per_core_factor(&a, &b),
    );
    println!(
        "  off-chip BW per core  : {}/s -> {}/s",
        fmt_bytes(a.memory_bw_per_core() as u64),
        fmt_bytes(b.memory_bw_per_core() as u64),
    );
    println!(
        "  total concurrency     : {} -> {} cores",
        a.total_concurrency(),
        b.total_concurrency(),
    );
}
