//! `trace` — run a figure-scale collective I/O config with the
//! observability layer enabled and emit its artifacts: a Chrome
//! `trace_event` JSON per strategy (loadable in Perfetto /
//! `chrome://tracing`), a JSONL event stream, and a metrics summary
//! table.
//!
//! ```text
//! cargo run --release -p mccio-bench --bin trace -- [ci|fig7] [outdir]
//! cargo run --release -p mccio-bench --bin trace -- gate <perf_smoke.json>
//! ```
//!
//! * `ci` — the bounded 24-rank config (CI artifact validation);
//! * `fig7` (default) — the fig7-scale config (120 ranks, IOR
//!   interleaved);
//! * `gate <perf_smoke.json>` — the tracing-overhead gate: re-runs the
//!   JSON's mode with the sink *disabled* and fails if wall time
//!   regressed past noise against the recorded smoke numbers, then runs
//!   it *enabled* and fails unless every virtual time is bit-identical.
//!
//! Every emitted artifact is validated before the binary exits 0, so CI
//! can treat "trace ran" as "trace is loadable".

use std::process::exit;
use std::time::Instant;

use mccio_bench::{paper_pair, run, run_traced, Platform};
use mccio_obs::{export, json, ObsSink};
use mccio_sim::units::MIB;
use mccio_workloads::Ior;

/// Wall-clock noise allowance for the gate: simulator wall time on a
/// shared machine jitters; a zero-cost disabled path stays well inside
/// this, an accidentally-hot instrumentation path does not.
const GATE_NOISE_FACTOR: f64 = 1.6;

/// `(nodes, ranks, MiB per rank, aggregation-buffer MiB)` for a mode —
/// the same configs `perf_smoke` times.
fn config(mode: &str) -> (usize, usize, u64, u64) {
    match mode {
        "ci" => (4, 24, 2, 4),
        "fig7" => (10, 120, 4, 16),
        other => {
            eprintln!("trace: unknown mode {other:?} (use ci|fig7|gate)");
            exit(2);
        }
    }
}

fn platform_for(mode: &str) -> (Platform, Ior, u64) {
    let (n_nodes, n_ranks, per_rank_mib, buffer_mib) = config(mode);
    let platform = Platform::testbed(n_nodes, n_ranks, 8).with_memory(320 * MIB, 64 * MIB);
    let workload = Ior::interleaved_total(per_rank_mib * MIB, 16);
    (platform, workload, buffer_mib * MIB)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => {
            let baseline = args.get(1).unwrap_or_else(|| {
                eprintln!("trace gate: missing <perf_smoke.json> argument");
                exit(2);
            });
            gate(baseline);
        }
        mode => {
            let mode = mode.unwrap_or("fig7").to_string();
            let outdir = args.get(1).cloned().unwrap_or_else(|| ".".to_string());
            emit(&mode, &outdir);
        }
    }
}

/// Runs both paper strategies with tracing enabled and writes the
/// artifacts into `outdir`, validating each before exit.
fn emit(mode: &str, outdir: &str) {
    let (platform, workload, buffer) = platform_for(mode);
    std::fs::create_dir_all(outdir).expect("create output directory");
    let mut failures = 0usize;
    for (name, strategy) in paper_pair(&platform, buffer) {
        let obs = ObsSink::enabled();
        let result = run_traced(&workload, &*strategy, &platform, &obs);
        let events = obs.events();
        println!(
            "{name}: write {:.1} MB/s, read {:.1} MB/s, {} events recorded",
            result.write_mbps(),
            result.read_mbps(),
            events.len()
        );

        let chrome = export::chrome_trace(&events);
        let chrome_path = format!("{outdir}/trace_{name}.json");
        std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
        match export::validate_chrome_trace(&chrome) {
            Ok(summary) => {
                println!(
                    "  {chrome_path}: {} events on {} tracks, ends at {:.1} virtual ms",
                    summary.events,
                    summary.tracks,
                    summary.end_ts / 1e3
                );
                // The operation must be covered end to end: plan →
                // prologue → rounds (shuffle/storage) → settle → op.
                for required in ["op", "schedule", "prologue", "round", "storage", "settle"] {
                    if !summary.has(required) {
                        eprintln!("  MISSING span {required:?} in {chrome_path}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("  INVALID {chrome_path}: {e}");
                failures += 1;
            }
        }

        let jsonl = export::jsonl(&events);
        let jsonl_path = format!("{outdir}/events_{name}.jsonl");
        std::fs::write(&jsonl_path, &jsonl).expect("write jsonl");
        match export::validate_jsonl(&jsonl) {
            Ok(n) => println!("  {jsonl_path}: {n} lines"),
            Err(e) => {
                eprintln!("  INVALID {jsonl_path}: {e}");
                failures += 1;
            }
        }

        println!("metrics [{name}]:");
        print!("{}", obs.metrics().summary_table());
    }
    if failures > 0 {
        eprintln!("trace: {failures} artifact validation failure(s)");
        exit(1);
    }
}

/// The overhead gate; see the module docs.
fn gate(baseline_path: &str) {
    let doc = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("trace gate: read {baseline_path}: {e}"));
    let baseline = json::parse(&doc).unwrap_or_else(|e| panic!("trace gate: parse baseline: {e}"));
    let mode = baseline
        .get("mode")
        .and_then(json::Value::as_str)
        .expect("baseline json has a \"mode\"")
        .to_string();
    let recorded_wall: f64 = baseline
        .get("strategies")
        .and_then(json::Value::as_arr)
        .expect("baseline json has \"strategies\"")
        .iter()
        .map(|s| {
            s.get("wall_secs")
                .and_then(json::Value::as_f64)
                .expect("strategy row has wall_secs")
        })
        .sum();

    let (platform, workload, buffer) = platform_for(&mode);
    let mut disabled_wall = 0.0;
    let mut ok = true;
    for (name, strategy) in paper_pair(&platform, buffer) {
        // Tracing disabled: the sink must cost nothing.
        let t0 = Instant::now();
        let plain = run(&workload, &*strategy, &platform);
        disabled_wall += t0.elapsed().as_secs_f64();
        // Tracing enabled: virtual time must not move by a bit.
        let traced = run_traced(&workload, &*strategy, &platform, &ObsSink::enabled());
        if plain.write_secs.to_bits() != traced.write_secs.to_bits()
            || plain.read_secs.to_bits() != traced.read_secs.to_bits()
        {
            eprintln!(
                "GATE FAIL [{name}]: tracing moved virtual time \
                 (write {} vs {}, read {} vs {})",
                plain.write_secs, traced.write_secs, plain.read_secs, traced.read_secs
            );
            ok = false;
        }
    }
    println!(
        "gate[{mode}]: disabled-tracing wall {disabled_wall:.3}s vs recorded {recorded_wall:.3}s \
         (allowance x{GATE_NOISE_FACTOR})"
    );
    if disabled_wall > recorded_wall * GATE_NOISE_FACTOR {
        eprintln!(
            "GATE FAIL: wall time with tracing disabled exceeds the recorded smoke numbers \
             beyond noise — the disabled sink is not free"
        );
        ok = false;
    }
    if !ok {
        exit(1);
    }
    println!("gate: ok (virtual time bit-identical with tracing on/off; disabled path at speed)");
}
