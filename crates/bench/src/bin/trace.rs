//! `trace` — run a figure-scale collective I/O config with the
//! observability layer enabled and emit its artifacts: a Chrome
//! `trace_event` JSON per strategy (loadable in Perfetto /
//! `chrome://tracing`), a JSONL event stream, and a metrics summary
//! table.
//!
//! ```text
//! cargo run --release -p mccio-bench --bin trace -- [ci|fig7] [outdir]
//! cargo run --release -p mccio-bench --bin trace -- gate <perf_smoke.json>
//! cargo run --release -p mccio-bench --bin trace -- report [ci|fig7] [outdir]
//! cargo run --release -p mccio-bench --bin trace -- causal [ci|fig7] [outdir]
//! cargo run --release -p mccio-bench --bin trace -- regress <bench.json> \
//!     [--wall-threshold F] [--inject-wall F]
//! ```
//!
//! * `ci` — the bounded 24-rank config (CI artifact validation);
//! * `fig7` (default) — the fig7-scale config (120 ranks, IOR
//!   interleaved);
//! * `gate <perf_smoke.json>` — the tracing-overhead gate: re-runs the
//!   JSON's mode with the sink *disabled* and fails if wall time
//!   regressed past noise against the recorded smoke numbers, then runs
//!   it *enabled* and fails unless every virtual time is bit-identical;
//! * `report` — runs both paper strategies traced, analyzes each trace
//!   (critical path, occupancy timelines), and writes one self-contained
//!   HTML report per strategy — the second carries the A/B diff against
//!   the first. Exits nonzero unless every op's critical-path total is
//!   bit-identical to its op span and the JSONL artifact replays into a
//!   bit-identical analysis;
//! * `causal` — root-cause analysis: runs both paper strategies with
//!   message-causality tracing under a deterministic 5 µs control-plane
//!   latency (so clocks genuinely diverge and blame chains hop ranks),
//!   on *both* rank executors. Exits nonzero unless the blame chains
//!   are bit-identical across executors, every chain tiles its op span
//!   to the bit, the live DP frontier stayed bounded, and the
//!   flow-annotated Chrome trace validates. Writes one causal HTML
//!   report and one flow-annotated Chrome trace per strategy, and
//!   prints each op's blame chain and what-if projections;
//! * `regress <bench.json>` — the perf-regression gate: re-runs the
//!   baseline's mode, requires every deterministic counter to match
//!   exactly, virtual bandwidths to match at print precision, and total
//!   wall time to stay within `--wall-threshold` (default 0.15) of the
//!   recording. `--inject-wall F` scales the measured wall by `F` to
//!   prove the gate trips. A `scale-obs` baseline (`BENCH_PR9.json`)
//!   dispatches to the streaming-observability check instead: the
//!   recorded virtual times, stream cell/fold/retain counts, and the
//!   obs allocation budget are re-verified against a live re-run.
//!
//! Every emitted artifact is validated before the binary exits 0, so CI
//! can treat "trace ran" as "trace is loadable".

use std::process::exit;
use std::time::Instant;

use mccio_bench::{paper_pair, run, run_on_traced, run_on_traced_faulty, run_traced, Platform};
use mccio_net::ExecutorKind;
use mccio_obs::{analyze, export, json, report, ObsSink, StreamConfig};
use mccio_sim::fault::FaultPlan;
use mccio_sim::time::VDuration;
use mccio_sim::units::{KIB, MIB};
use mccio_workloads::Ior;

/// Wall-clock noise allowance for the gate: simulator wall time on a
/// shared machine jitters; a zero-cost disabled path stays well inside
/// this, an accidentally-hot instrumentation path does not.
const GATE_NOISE_FACTOR: f64 = 1.6;

/// `(nodes, ranks, MiB per rank, aggregation-buffer MiB)` for a mode —
/// the same configs `perf_smoke` times.
fn config(mode: &str) -> (usize, usize, u64, u64) {
    match mode {
        "ci" => (4, 24, 2, 4),
        "fig7" => (10, 120, 4, 16),
        other => {
            eprintln!("trace: unknown mode {other:?} (use ci|fig7|gate|report|causal|regress)");
            exit(2);
        }
    }
}

fn platform_for(mode: &str) -> (Platform, Ior, u64) {
    let (n_nodes, n_ranks, per_rank_mib, buffer_mib) = config(mode);
    let platform = Platform::testbed(n_nodes, n_ranks, 8).with_memory(320 * MIB, 64 * MIB);
    let workload = Ior::interleaved_total(per_rank_mib * MIB, 16);
    (platform, workload, buffer_mib * MIB)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => {
            let baseline = args.get(1).unwrap_or_else(|| {
                eprintln!("trace gate: missing <perf_smoke.json> argument");
                exit(2);
            });
            gate(baseline);
        }
        Some("report") => {
            let mode = args.get(1).cloned().unwrap_or_else(|| "fig7".to_string());
            let outdir = args.get(2).cloned().unwrap_or_else(|| ".".to_string());
            report_mode(&mode, &outdir);
        }
        Some("causal") => {
            let mode = args.get(1).cloned().unwrap_or_else(|| "fig7".to_string());
            let outdir = args.get(2).cloned().unwrap_or_else(|| ".".to_string());
            causal_mode(&mode, &outdir);
        }
        Some("regress") => {
            let baseline = args.get(1).cloned().unwrap_or_else(|| {
                eprintln!("trace regress: missing <bench.json> argument");
                exit(2);
            });
            let mut wall_threshold = 0.15;
            let mut inject_wall = 1.0;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--wall-threshold" => {
                        wall_threshold = args
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| {
                                eprintln!("trace regress: --wall-threshold wants a number");
                                exit(2);
                            });
                        i += 2;
                    }
                    "--inject-wall" => {
                        inject_wall =
                            args.get(i + 1)
                                .and_then(|v| v.parse().ok())
                                .unwrap_or_else(|| {
                                    eprintln!("trace regress: --inject-wall wants a number");
                                    exit(2);
                                });
                        i += 2;
                    }
                    other => {
                        eprintln!("trace regress: unknown option {other:?}");
                        exit(2);
                    }
                }
            }
            regress(&baseline, wall_threshold, inject_wall);
        }
        mode => {
            let mode = mode.unwrap_or("fig7").to_string();
            let outdir = args.get(1).cloned().unwrap_or_else(|| ".".to_string());
            emit(&mode, &outdir);
        }
    }
}

/// Runs both paper strategies with tracing enabled and writes the
/// artifacts into `outdir`, validating each before exit.
fn emit(mode: &str, outdir: &str) {
    let (platform, workload, buffer) = platform_for(mode);
    std::fs::create_dir_all(outdir).expect("create output directory");
    let mut failures = 0usize;
    for (name, strategy) in paper_pair(&platform, buffer) {
        let obs = ObsSink::enabled();
        let result = run_traced(&workload, &*strategy, &platform, &obs);
        // Exporters read the event list in place — no O(events) clone.
        let (n_events, chrome, jsonl) = obs.with_events(|events| {
            (
                events.len(),
                export::chrome_trace(events),
                export::jsonl(events),
            )
        });
        println!(
            "{name}: write {:.1} MB/s, read {:.1} MB/s, {n_events} events recorded",
            result.write_mbps(),
            result.read_mbps(),
        );

        let chrome_path = format!("{outdir}/trace_{name}.json");
        std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
        match export::validate_chrome_trace(&chrome) {
            Ok(summary) => {
                println!(
                    "  {chrome_path}: {} events on {} tracks, ends at {:.1} virtual ms",
                    summary.events,
                    summary.tracks,
                    summary.end_ts / 1e3
                );
                // The operation must be covered end to end: plan →
                // prologue → rounds (shuffle/storage) → settle → op.
                for required in ["op", "schedule", "prologue", "round", "storage", "settle"] {
                    if !summary.has(required) {
                        eprintln!("  MISSING span {required:?} in {chrome_path}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("  INVALID {chrome_path}: {e}");
                failures += 1;
            }
        }

        let jsonl_path = format!("{outdir}/events_{name}.jsonl");
        std::fs::write(&jsonl_path, &jsonl).expect("write jsonl");
        match export::validate_jsonl(&jsonl) {
            Ok(n) => println!("  {jsonl_path}: {n} lines"),
            Err(e) => {
                eprintln!("  INVALID {jsonl_path}: {e}");
                failures += 1;
            }
        }

        println!("metrics [{name}]:");
        print!("{}", obs.metrics().summary_table());
    }
    if failures > 0 {
        eprintln!("trace: {failures} artifact validation failure(s)");
        exit(1);
    }
}

/// The overhead gate; see the module docs.
fn gate(baseline_path: &str) {
    let doc = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("trace gate: read {baseline_path}: {e}"));
    let baseline = json::parse(&doc).unwrap_or_else(|e| panic!("trace gate: parse baseline: {e}"));
    let mode = baseline
        .get("mode")
        .and_then(json::Value::as_str)
        .expect("baseline json has a \"mode\"")
        .to_string();
    let recorded_wall: f64 = baseline
        .get("strategies")
        .and_then(json::Value::as_arr)
        .expect("baseline json has \"strategies\"")
        .iter()
        .map(|s| {
            s.get("wall_secs")
                .and_then(json::Value::as_f64)
                .expect("strategy row has wall_secs")
        })
        .sum();

    let (platform, workload, buffer) = platform_for(&mode);
    let mut disabled_wall = 0.0;
    let mut ok = true;
    for (name, strategy) in paper_pair(&platform, buffer) {
        // Tracing disabled: the sink must cost nothing.
        let t0 = Instant::now();
        let plain = run(&workload, &*strategy, &platform);
        disabled_wall += t0.elapsed().as_secs_f64();
        // Tracing enabled: virtual time must not move by a bit.
        let traced = run_traced(&workload, &*strategy, &platform, &ObsSink::enabled());
        if plain.write_secs.to_bits() != traced.write_secs.to_bits()
            || plain.read_secs.to_bits() != traced.read_secs.to_bits()
        {
            eprintln!(
                "GATE FAIL [{name}]: tracing moved virtual time \
                 (write {} vs {}, read {} vs {})",
                plain.write_secs, traced.write_secs, plain.read_secs, traced.read_secs
            );
            ok = false;
        }
    }
    println!(
        "gate[{mode}]: disabled-tracing wall {disabled_wall:.3}s vs recorded {recorded_wall:.3}s \
         (allowance x{GATE_NOISE_FACTOR})"
    );
    if disabled_wall > recorded_wall * GATE_NOISE_FACTOR {
        eprintln!(
            "GATE FAIL: wall time with tracing disabled exceeds the recorded smoke numbers \
             beyond noise — the disabled sink is not free"
        );
        ok = false;
    }
    if !ok {
        exit(1);
    }
    println!("gate: ok (virtual time bit-identical with tracing on/off; disabled path at speed)");
}

/// Runs both paper strategies traced, analyzes each trace, and writes
/// one self-contained HTML report per strategy (the second carrying the
/// A/B diff against the first). Fails unless the analysis is exact: the
/// critical-path total must equal the op span's virtual duration to the
/// bit, the phase tiling must close, and the JSONL artifact must replay
/// into a bit-identical analysis.
fn report_mode(mode: &str, outdir: &str) {
    let (platform, workload, buffer) = platform_for(mode);
    std::fs::create_dir_all(outdir).expect("create output directory");
    let mut failures = 0usize;
    let mut first: Option<analyze::TraceAnalysis> = None;
    for (name, strategy) in paper_pair(&platform, buffer) {
        let obs = ObsSink::enabled();
        let result = run_traced(&workload, &*strategy, &platform, &obs);
        let analysis = analyze::TraceAnalysis::of_sink(&obs).unwrap_or_else(|e| {
            eprintln!("report[{name}]: analysis failed: {e}");
            exit(1);
        });

        // Acceptance invariant 1: the critical-path total is the op
        // span's priced duration, bit for bit. Cross-check against the
        // events independently of how the analyzer stored it.
        let events: Vec<analyze::TraceEvent> = {
            let mut live = obs.events();
            mccio_obs::span::sort_for_export(&mut live);
            live.iter().map(analyze::TraceEvent::from_live).collect()
        };
        let op_durs: Vec<f64> = events
            .iter()
            .filter(|e| e.name == "op")
            .map(|e| e.end().as_secs() - e.kind.at().as_secs())
            .collect();
        let virt = [result.write_secs, result.read_secs];
        for (i, op) in analysis.ops.iter().enumerate() {
            if op.total.as_secs().to_bits() != virt[i.min(1)].to_bits() {
                eprintln!(
                    "report[{name}]: op {i} critical-path total {} != measured virtual {}",
                    op.total.as_secs(),
                    virt[i.min(1)]
                );
                failures += 1;
            }
            if op_durs
                .get(i)
                .is_none_or(|d| d.to_bits() != op.total.as_secs().to_bits())
            {
                eprintln!("report[{name}]: op {i} total does not match its span event");
                failures += 1;
            }
            if op.tiling_error.abs() > analyze::TILING_EPS * op.rounds.max(1) as f64 {
                eprintln!(
                    "report[{name}]: op {i} tiling error {} over {} rounds",
                    op.tiling_error, op.rounds
                );
                failures += 1;
            }
        }
        // Acceptance invariant 2: the JSONL artifact replays into a
        // bit-identical analysis (attribution and totals).
        let replayed = analyze::TraceEvent::from_jsonl(&export::jsonl(&obs.events()))
            .and_then(|evs| analyze::TraceAnalysis::from_events(&evs))
            .unwrap_or_else(|e| {
                eprintln!("report[{name}]: JSONL replay failed: {e}");
                exit(1);
            });
        if replayed.ops.len() != analysis.ops.len()
            || replayed.ops.iter().zip(&analysis.ops).any(|(r, l)| {
                r.total.as_secs().to_bits() != l.total.as_secs().to_bits()
                    || r.attribution.total().to_bits() != l.attribution.total().to_bits()
            })
        {
            eprintln!("report[{name}]: JSONL replay is not bit-identical to the live analysis");
            failures += 1;
        }

        let diff = first.as_ref().map(|a| a.diff(&analysis));
        let title = format!("mccio trace report — {mode} / {name}");
        let html = report::render(&title, &events, &analysis, diff.as_ref());
        if !html.starts_with("<!DOCTYPE html>") || !html.ends_with("</html>\n") {
            eprintln!("report[{name}]: malformed HTML envelope");
            failures += 1;
        }
        let path = format!("{outdir}/report_{mode}_{name}.html");
        std::fs::write(&path, &html).expect("write report");
        for op in &analysis.ops {
            println!(
                "report[{name}]: {} op {:.6}s over {} rounds, dominant {}, top straggler {}",
                op.dir,
                op.total.as_secs(),
                op.rounds,
                op.attribution.dominant().name(),
                op.top_straggler()
                    .map_or("none".to_string(), |(r, n)| format!(
                        "rank {r} ({n} rounds)"
                    )),
            );
        }
        for tl in &analysis.memory {
            println!(
                "report[{name}]: node {} peak {} B of ceiling, balance {} B, overflow windows {}",
                tl.node,
                tl.peak,
                tl.final_occupancy,
                tl.overflow.len()
            );
        }
        println!("  wrote {path} ({} bytes)", html.len());
        first = Some(analysis);
    }
    if failures > 0 {
        eprintln!("report: {failures} invariant failure(s)");
        exit(1);
    }
}

/// Deterministic control-plane latency for the causal mode. The
/// engine's phases are root-priced — every rank charges the same
/// broadcast duration — so without real message latency all clocks move
/// in lock-step, every delivery is slack, and blame chains degenerate
/// to a single local-work segment. A few microseconds of control-plane
/// latency genuinely advances receiver clocks at barriers and gathers,
/// which is what makes cross-rank chains non-vacuous to check.
const CAUSAL_CTL_DELAY_MICROS: f64 = 5.0;

/// Seed for the causal mode's fault plan (the plan carries only the
/// deterministic control delay; no random faults fire).
const CAUSAL_SEED: u64 = 0xCA05;

fn causal_plan() -> FaultPlan {
    FaultPlan::new(CAUSAL_SEED).delay_control(VDuration::from_micros(CAUSAL_CTL_DELAY_MICROS))
}

/// Root-cause analysis over both paper strategies: runs each with
/// causal tracing armed under [`causal_plan`] on *both* rank executors,
/// requires the recorded blame chains to be bit-identical across them,
/// requires every chain to tile its op span to the bit and to actually
/// hop ranks, then writes one causal HTML report and one flow-annotated
/// Chrome trace per strategy and prints the blame chains and what-if
/// projections.
fn causal_mode(mode: &str, outdir: &str) {
    let (platform, workload, buffer) = platform_for(mode);
    std::fs::create_dir_all(outdir).expect("create output directory");
    let mut failures = 0usize;
    for (name, strategy) in paper_pair(&platform, buffer) {
        let run_causal = |executor: ExecutorKind| {
            let obs = ObsSink::enabled().with_causal();
            let result = run_on_traced_faulty(
                &workload,
                &*strategy,
                &platform,
                executor,
                &obs,
                causal_plan(),
            );
            (obs, result)
        };
        let (obs, result) = run_causal(ExecutorKind::Event);
        let (obs_thr, result_thr) = run_causal(ExecutorKind::Threads);

        // The analysis must be engine-independent: same virtual times,
        // same blame chains, bit for bit, on both executors.
        if result.write_secs.to_bits() != result_thr.write_secs.to_bits()
            || result.read_secs.to_bits() != result_thr.read_secs.to_bits()
        {
            eprintln!(
                "causal[{name}]: executors disagree on virtual time \
                 (write {} vs {}, read {} vs {})",
                result.write_secs, result_thr.write_secs, result.read_secs, result_thr.read_secs
            );
            failures += 1;
        }
        if obs.causal_chains() != obs_thr.causal_chains() {
            eprintln!("causal[{name}]: blame chains differ across executors");
            failures += 1;
        }

        // The online DP must have settled clean and stayed bounded.
        let agg = obs.causal().expect("causal tracing is armed");
        if agg.inflight_len() != 0 {
            eprintln!(
                "causal[{name}]: {} message(s) still in flight after the run",
                agg.inflight_len()
            );
            failures += 1;
        }
        if agg.nodes_created() == 0 {
            eprintln!("causal[{name}]: no deliveries bound — the control delay skewed nothing");
            failures += 1;
        }
        if agg.live_nodes() as u64 > agg.nodes_created() {
            eprintln!(
                "causal[{name}]: live frontier {} exceeds nodes created {}",
                agg.live_nodes(),
                agg.nodes_created()
            );
            failures += 1;
        }

        let analysis = analyze::TraceAnalysis::of_sink(&obs).unwrap_or_else(|e| {
            eprintln!("causal[{name}]: analysis failed: {e}");
            exit(1);
        });
        let causal = analysis.causal.as_ref().unwrap_or_else(|| {
            eprintln!("causal[{name}]: analysis carries no causal layer");
            exit(1);
        });
        for (i, op) in causal.ops.iter().enumerate() {
            if let Err(e) = op.chain.verify_tiling() {
                eprintln!("causal[{name}]: op {i} blame chain does not tile: {e}");
                failures += 1;
            }
            // The chain's [t0, end] window is the op span itself, so its
            // total must be the critical-path total to the bit.
            if analysis
                .ops
                .get(i)
                .is_none_or(|p| p.total.as_secs().to_bits() != op.chain.total().as_secs().to_bits())
            {
                eprintln!(
                    "causal[{name}]: op {i} chain total {} is not the op span",
                    op.chain.total().as_secs()
                );
                failures += 1;
            }
            if op.chain.hops() == 0 {
                eprintln!("causal[{name}]: op {i} blame chain never leaves rank 0");
                failures += 1;
            }
            println!(
                "causal[{name}]: {} op {:.6}s, {} hop(s) across ranks {:?}, \
                 wait {:.6}s / work {:.6}s",
                op.chain.dir,
                op.chain.total().as_secs(),
                op.chain.hops(),
                op.chain.ranks(),
                op.wait_secs,
                op.work_secs,
            );
            for w in &op.what_ifs {
                println!(
                    "  what-if {:>14}: {:.6}s projected ({:.2}x)",
                    w.name, w.projected_secs, w.speedup
                );
            }
        }

        // Artifacts: the causal HTML report and the flow-annotated
        // Chrome trace, both validated before exit.
        let events: Vec<analyze::TraceEvent> = {
            let mut live = obs.events();
            mccio_obs::span::sort_for_export(&mut live);
            live.iter().map(analyze::TraceEvent::from_live).collect()
        };
        let title = format!("mccio causal report — {mode} / {name}");
        let html = report::render(&title, &events, &analysis, None);
        if !html.starts_with("<!DOCTYPE html>") || !html.ends_with("</html>\n") {
            eprintln!("causal[{name}]: malformed HTML envelope");
            failures += 1;
        }
        let html_path = format!("{outdir}/report_causal_{mode}_{name}.html");
        std::fs::write(&html_path, &html).expect("write causal report");
        println!("  wrote {html_path} ({} bytes)", html.len());

        let edges = obs.causal_edges();
        if edges.is_empty() {
            eprintln!("causal[{name}]: buffered sink retained no message edges");
            failures += 1;
        }
        let chrome = obs.with_events(|events| export::chrome_trace_flows(events, &edges));
        let chrome_path = format!("{outdir}/trace_causal_{name}.json");
        std::fs::write(&chrome_path, &chrome).expect("write causal chrome trace");
        match export::validate_chrome_trace(&chrome) {
            Ok(summary) => println!(
                "  {chrome_path}: {} events on {} tracks, {} flow edge(s)",
                summary.events,
                summary.tracks,
                edges.len()
            ),
            Err(e) => {
                eprintln!("  INVALID {chrome_path}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("causal: {failures} invariant failure(s)");
        exit(1);
    }
    println!(
        "causal: ok (chains bit-identical across executors, tiled to the bit, artifacts valid)"
    );
}

/// Exact-match tolerance for replayed f64 counters recorded at `{:.0}`.
const COUNTER_F64_EPS: f64 = 0.5;
/// Tolerance for `mem_peak_cov`, recorded at 4 decimal places.
const COV_EPS: f64 = 1e-3;
/// Tolerance for virtual bandwidths, recorded at 1 decimal place.
const MBPS_EPS: f64 = 0.1;

/// The perf-regression gate; see the module docs.
fn regress(baseline_path: &str, wall_threshold: f64, inject_wall: f64) {
    let doc = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("trace regress: read {baseline_path}: {e}"));
    let baseline =
        json::parse(&doc).unwrap_or_else(|e| panic!("trace regress: parse baseline: {e}"));
    // A streaming-observability record (`scale obs` → BENCH_PR9.json)
    // has its own check: its "mode" names a scale-bench mode, not a
    // trace config, so dispatch on the bench tag before touching it.
    if baseline.get("bench").and_then(json::Value::as_str) == Some("scale-obs") {
        regress_obs(&baseline, wall_threshold, inject_wall);
        return;
    }
    let mode = baseline
        .get("mode")
        .and_then(json::Value::as_str)
        .expect("baseline json has a \"mode\"")
        .to_string();
    let rows = baseline
        .get("strategies")
        .and_then(json::Value::as_arr)
        .expect("baseline json has \"strategies\"");

    let (platform, workload, buffer) = platform_for(&mode);
    let reps = smoke_reps();
    let mut ok = true;
    let mut baseline_wall = 0.0;
    let mut measured_wall = 0.0;
    for (name, strategy) in paper_pair(&platform, buffer) {
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(json::Value::as_str) == Some(&name))
            .unwrap_or_else(|| panic!("baseline has no strategy row {name:?}"));
        let mut best_wall = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = run(&workload, &*strategy, &platform);
            best_wall = best_wall.min(t0.elapsed().as_secs_f64());
            result = Some(r);
        }
        let result = result.expect("at least one rep");
        measured_wall += best_wall;
        baseline_wall += row
            .get("wall_secs")
            .and_then(json::Value::as_f64)
            .expect("row has wall_secs");

        let m = result.metrics;
        let counters = row.get("counters").expect("row has counters");
        let exact: [(&str, f64); 7] = [
            ("rounds", m.rounds as f64),
            ("shuffle_bytes", m.shuffle_bytes as f64),
            ("storage_requests", m.storage_requests as f64),
            ("storage_bytes", m.storage_bytes as f64),
            ("pool_hits", m.pool_hits as f64),
            ("pool_misses", m.pool_misses as f64),
            ("mem_peak_max", m.mem_peak_max),
        ];
        for (key, measured) in exact {
            let recorded = counters
                .get(key)
                .and_then(json::Value::as_f64)
                .unwrap_or_else(|| panic!("baseline counter {key:?} missing"));
            if (measured - recorded).abs() > COUNTER_F64_EPS {
                eprintln!(
                    "REGRESS FAIL [{name}]: counter {key} = {measured} vs recorded {recorded}"
                );
                ok = false;
            }
        }
        if let Some(cov) = counters.get("mem_peak_cov").and_then(json::Value::as_f64) {
            if (m.mem_peak_cov - cov).abs() > COV_EPS {
                eprintln!(
                    "REGRESS FAIL [{name}]: mem_peak_cov = {:.4} vs recorded {cov:.4}",
                    m.mem_peak_cov
                );
                ok = false;
            }
        }
        for (key, measured) in [
            ("virtual_write_mbps", result.write_mbps()),
            ("virtual_read_mbps", result.read_mbps()),
        ] {
            let recorded = row
                .get(key)
                .and_then(json::Value::as_f64)
                .unwrap_or_else(|| panic!("baseline {key:?} missing"));
            if (measured - recorded).abs() > MBPS_EPS {
                eprintln!("REGRESS FAIL [{name}]: {key} = {measured:.1} vs recorded {recorded:.1}");
                ok = false;
            }
        }
    }
    measured_wall *= inject_wall;
    let limit = baseline_wall * (1.0 + wall_threshold);
    println!(
        "regress[{mode}]: wall {measured_wall:.3}s vs recorded {baseline_wall:.3}s \
         (limit {limit:.3}s{})",
        if inject_wall != 1.0 {
            format!(", injected x{inject_wall}")
        } else {
            String::new()
        }
    );
    if measured_wall > limit {
        eprintln!(
            "REGRESS FAIL: wall time {measured_wall:.3}s exceeds recorded {baseline_wall:.3}s \
             by more than {:.0}%",
            wall_threshold * 100.0
        );
        ok = false;
    }
    if !ok {
        exit(1);
    }
    println!("regress: ok (counters exact, virtual bandwidth at print precision, wall in budget)");
}

/// Best-of-reps, matching how perf_smoke records its wall numbers: the
/// recorded baseline is a best-of measurement, so a single cold run
/// (binary load, page faults) would read as a false regression.
fn smoke_reps() -> u32 {
    std::env::var("MCCIO_SMOKE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Tolerance for virtual times recorded at 9 decimal places.
const VIRT_SECS_EPS: f64 = 1e-8;

/// The streaming-observability regression check: re-runs the baseline's
/// *first* point (the 10k-rank flagship; later points are full-scale
/// runs, not smoke-sized) with the same streaming sink configuration on
/// the event executor, and requires the deterministic stream counters
/// to match exactly, the virtual times to match at print precision, the
/// recorded obs allocations to fit the recorded budget, and the wall
/// time to stay within the threshold of the recording.
fn regress_obs(baseline: &json::Value, wall_threshold: f64, inject_wall: f64) {
    let f64_of = |v: &json::Value, key: &str| {
        v.get(key)
            .and_then(json::Value::as_f64)
            .unwrap_or_else(|| panic!("scale-obs baseline field {key:?} missing"))
    };
    let lanes = f64_of(baseline, "exemplar_lanes") as u32;
    let budget = f64_of(baseline, "obs_alloc_budget_bytes");
    let points = baseline
        .get("points")
        .and_then(json::Value::as_arr)
        .expect("scale-obs baseline has \"points\"");
    let point = points.first().expect("scale-obs baseline has a point");
    if points.len() > 1 {
        println!(
            "regress[obs]: checking the first point only ({} larger point(s) skipped)",
            points.len() - 1
        );
    }
    let ranks = f64_of(point, "ranks") as usize;
    let per_rank_kib = f64_of(point, "per_rank_kib") as u64;
    let segments = f64_of(point, "segments") as u64;

    // The exact shape `scale obs` ran: fig7-density testbed, IOR
    // interleaved, the memory-conscious half of the paper pair.
    let platform = Platform::testbed(ranks / 12, ranks, 8).with_memory(320 * MIB, 64 * MIB);
    let workload = Ior::interleaved_total(per_rank_kib * KIB, segments);
    let [_, (name, strategy)] = paper_pair(&platform, 4 * MIB);

    let mut ok = true;
    let mut best_wall = f64::INFINITY;
    let mut last = None;
    for _ in 0..smoke_reps() {
        let sink = ObsSink::streaming(StreamConfig::for_ranks(ranks, lanes));
        let t0 = Instant::now();
        let r = run_on_traced(&workload, &*strategy, &platform, ExecutorKind::Event, &sink);
        best_wall = best_wall.min(t0.elapsed().as_secs_f64());
        last = Some((sink, r));
    }
    let (sink, result) = last.expect("at least one rep");
    let agg = sink
        .stream_stats()
        .expect("streaming sink has an aggregate");

    // Deterministic counters: exact.
    let exact: [(&str, u64); 3] = [
        ("stream_cells", agg.cell_count() as u64),
        ("events_folded", agg.folded_events),
        ("events_retained", agg.retained_events),
    ];
    for (key, measured) in exact {
        let recorded = f64_of(point, key);
        if (measured as f64 - recorded).abs() > COUNTER_F64_EPS {
            eprintln!("REGRESS FAIL [{name}]: {key} = {measured} vs recorded {recorded}");
            ok = false;
        }
    }
    // Virtual times: bit-stable in practice, recorded at 9 decimals.
    for (key, measured) in [
        ("virtual_write_secs", result.write_secs),
        ("virtual_read_secs", result.read_secs),
    ] {
        let recorded = f64_of(point, key);
        if (measured - recorded).abs() > VIRT_SECS_EPS {
            eprintln!("REGRESS FAIL [{name}]: {key} = {measured:.9} vs recorded {recorded:.9}");
            ok = false;
        }
    }
    // The recorded obs allocations must fit the recorded budget — the
    // record itself must witness the bounded-memory claim.
    let recorded_obs_bytes = f64_of(point, "obs_alloc_bytes");
    if recorded_obs_bytes > budget {
        eprintln!(
            "REGRESS FAIL [{name}]: recorded obs_alloc_bytes {recorded_obs_bytes} exceeds the \
             recorded budget {budget}"
        );
        ok = false;
    }

    let measured_wall = best_wall * inject_wall;
    let baseline_wall = f64_of(point, "wall_secs_obs");
    let limit = baseline_wall * (1.0 + wall_threshold);
    println!(
        "regress[obs]: {ranks} ranks, wall {measured_wall:.3}s vs recorded {baseline_wall:.3}s \
         (limit {limit:.3}s{})",
        if inject_wall == 1.0 {
            String::new()
        } else {
            format!(", injected x{inject_wall}")
        }
    );
    if measured_wall > limit {
        eprintln!(
            "REGRESS FAIL: obs wall time {measured_wall:.3}s exceeds recorded \
             {baseline_wall:.3}s by more than {:.0}%",
            wall_threshold * 100.0
        );
        ok = false;
    }
    if !ok {
        exit(1);
    }
    println!(
        "regress[obs]: ok (stream counters exact, virtual time at print precision, \
         obs allocations in budget, wall in budget)"
    );
}
