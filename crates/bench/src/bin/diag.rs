//! Plan diagnostics: prints the domain/aggregator layout both
//! strategies produce for a workload, without running any data movement.
//!
//! ```text
//! cargo run --release -p mccio-bench --bin diag [scale] [buffer_mib]
//! ```

use mccio_bench::Platform;
use mccio_core::mccio::{plan_mccio, MccioConfig};
use mccio_core::two_phase::{plan_two_phase, TwoPhaseConfig};
use mccio_mpiio::{ExtentList, GroupPattern};
use mccio_net::RankSet;
use mccio_sim::topology::{FillOrder, Placement};
use mccio_sim::units::MIB;
use mccio_workloads::CollPerf;

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let buffer_mib: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let platform = Platform::testbed(10, 120, 8).with_memory(96 * MIB, 50 * MIB);
    let workload = CollPerf::cube(scale, 120, 4);
    let placement = Placement::new(&platform.cluster, platform.n_ranks, FillOrder::Block).unwrap();
    let per_rank: Vec<ExtentList> = (0..120).map(|r| workload.extents(r)).collect();
    let pattern = GroupPattern::from_parts(RankSet::world(120), per_rank);
    let mem = platform.memory();
    let tuning = platform.tuning();
    println!("tuning: {tuning:?}");
    println!("file: {} MiB", workload.file_bytes() / MIB);

    let tp = plan_two_phase(
        &pattern,
        &placement,
        TwoPhaseConfig::with_buffer(buffer_mib * MIB),
    );
    println!(
        "\ntwo-phase: {} domains, {} rounds",
        tp.domains.len(),
        tp.rounds()
    );
    summarize(&tp, &placement);

    let cfg = MccioConfig::new(tuning, buffer_mib * MIB, platform.stripe);
    let mc = plan_mccio(&pattern, &placement, &mem, &cfg);
    println!(
        "\nmemory-conscious: {} domains, {} rounds",
        mc.domains.len(),
        mc.rounds()
    );
    summarize(&mc, &placement);
    for d in &mc.domains {
        println!(
            "  group {} domain {:>10}+{:<9} agg r{:<4} node {:<2} buffer {:>8}",
            d.group,
            d.domain.offset,
            d.domain.len,
            d.aggregator,
            placement.node_of(d.aggregator),
            d.buffer
        );
    }
}

fn summarize(plan: &mccio_core::plan::CollectivePlan, placement: &Placement) {
    let mut per_node = std::collections::BTreeMap::new();
    for d in &plan.domains {
        *per_node
            .entry(placement.node_of(d.aggregator))
            .or_insert(0usize) += 1;
    }
    println!("  aggregators per node: {per_node:?}");
}
