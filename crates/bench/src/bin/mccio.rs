//! `mccio` — command-line driver: run any workload under any strategy
//! on a configurable simulated platform and print the virtual-time
//! bandwidths plus the per-phase breakdown.
//!
//! ```text
//! cargo run --release -p mccio-bench --bin mccio -- \
//!     --nodes 10 --ranks 120 --servers 8 \
//!     --workload ior:block=2m,segments=16,mode=interleaved \
//!     --hints "mccio=enable,cb_buffer_size=16m" \
//!     --mem 96m:50m
//! ```
//!
//! Workload specs:
//!
//! ```text
//! ior:block=<size>,segments=<n>[,mode=interleaved|segmented|random]
//! coll_perf:dim=<elems>[,elem=<bytes>]
//! fs_test:record=<size>,objects=<n>[,touch=<size>]
//! synthetic:slice=<size>,extents=<n>,min=<size>,max=<size>[,seed=<n>]
//! ```

use std::collections::BTreeMap;
use std::process::exit;

use mccio_bench::{run_traced, Platform};
use mccio_core::stats::{derive_rounds, OpSummary};
use mccio_core::Hints;
use mccio_obs::ObsSink;
use mccio_sim::units::{fmt_bandwidth, fmt_bytes};
use mccio_workloads::{CollPerf, FsTest, Ior, IorMode, Synthetic, Workload};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run with --help for usage");
    exit(2);
}

fn parse_size(v: &str) -> u64 {
    let v = v.trim().to_ascii_lowercase();
    let (digits, mult) = match v.strip_suffix(['k', 'm', 'g']) {
        Some(rest) => (
            rest,
            match v.as_bytes()[v.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (v.as_str(), 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .unwrap_or_else(|_| fail(&format!("bad size {v:?}")))
        .checked_mul(mult)
        .unwrap_or_else(|| fail(&format!("size {v:?} overflows")))
}

fn parse_kv(spec: &str) -> BTreeMap<String, String> {
    spec.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|item| {
            let (k, v) = item
                .split_once('=')
                .unwrap_or_else(|| fail(&format!("expected key=value, got {item:?}")));
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect()
}

fn build_workload(spec: &str, ranks: usize) -> Box<dyn Workload> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let kv = parse_kv(rest);
    let get = |k: &str| kv.get(k).map(String::as_str);
    match kind {
        "ior" => {
            let block = parse_size(get("block").unwrap_or("1m"));
            let segments: u64 = get("segments")
                .unwrap_or("8")
                .parse()
                .unwrap_or_else(|_| fail("bad segments"));
            let mode = match get("mode").unwrap_or("interleaved") {
                "interleaved" => IorMode::Interleaved,
                "segmented" => IorMode::Segmented,
                "random" => IorMode::Random(
                    get("seed")
                        .unwrap_or("42")
                        .parse()
                        .unwrap_or_else(|_| fail("bad seed")),
                ),
                other => fail(&format!("unknown IOR mode {other:?}")),
            };
            Box::new(Ior::new(block, segments, mode))
        }
        "coll_perf" => {
            let dim = parse_size(get("dim").unwrap_or("120"));
            let elem = parse_size(get("elem").unwrap_or("4"));
            Box::new(CollPerf::cube(dim, ranks, elem))
        }
        "fs_test" => {
            let record = parse_size(get("record").unwrap_or("64k"));
            let objects: u64 = get("objects")
                .unwrap_or("8")
                .parse()
                .unwrap_or_else(|_| fail("bad objects"));
            let touch = get("touch").map_or(record, parse_size);
            Box::new(FsTest::new(record, objects, touch))
        }
        "synthetic" => {
            let slice = parse_size(get("slice").unwrap_or("1m"));
            let extents: usize = get("extents")
                .unwrap_or("16")
                .parse()
                .unwrap_or_else(|_| fail("bad extents"));
            let min = parse_size(get("min").unwrap_or("1k"));
            let max = parse_size(get("max").unwrap_or("16k"));
            let seed: u64 = get("seed")
                .unwrap_or("1")
                .parse()
                .unwrap_or_else(|_| fail("bad seed"));
            Box::new(Synthetic::new(slice, extents, min, max, seed))
        }
        other => fail(&format!("unknown workload {other:?}")),
    }
}

const HELP: &str = "\
mccio — run a simulated collective-I/O experiment

options (all have defaults):
  --nodes N            cluster nodes                     [4]
  --ranks N            MPI ranks                         [48]
  --servers N          storage servers (OSTs)            [8]
  --stripe SIZE        stripe unit                       [1m]
  --workload SPEC      see below                         [ior:block=1m,segments=8]
  --hints \"K=V,...\"    ROMIO-style hints                 [\"\"]
  --mem MEAN:STD       per-node available memory         [none = pristine]
  --seed N             memory-sampling seed              [0xC0FFEE]
  --trace-out PATH     write trace artifacts: PATH.json (Chrome),
                       PATH.jsonl (event stream), PATH.html (report)
  --help

workload specs:
  ior:block=<size>,segments=<n>[,mode=interleaved|segmented|random]
  coll_perf:dim=<elems>[,elem=<bytes>]
  fs_test:record=<size>,objects=<n>[,touch=<size>]
  synthetic:slice=<size>,extents=<n>,min=<size>,max=<size>[,seed=<n>]

hints: romio_cb_write, cb_buffer_size, romio_ds_write, ind_rd_buffer_size,
       mccio, mccio_n_ah, mccio_msg_ind, mccio_msg_group, mccio_seed
";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut nodes = 4usize;
    let mut ranks = 48usize;
    let mut servers = 8usize;
    let mut stripe = 1u64 << 20;
    let mut workload_spec = "ior:block=1m,segments=8".to_string();
    let mut hints_spec = String::new();
    let mut mem: Option<(u64, u64)> = None;
    let mut seed = 0xC0FFEEu64;
    let mut trace_out: Option<String> = None;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--nodes" => {
                nodes = value("--nodes")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --nodes"))
            }
            "--ranks" => {
                ranks = value("--ranks")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --ranks"))
            }
            "--servers" => {
                servers = value("--servers")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --servers"));
            }
            "--stripe" => stripe = parse_size(&value("--stripe")),
            "--workload" => workload_spec = value("--workload"),
            "--hints" => hints_spec = value("--hints"),
            "--mem" => {
                let v = value("--mem");
                let (mean, std) = v
                    .split_once(':')
                    .unwrap_or_else(|| fail("--mem wants MEAN:STD"));
                mem = Some((parse_size(mean), parse_size(std)));
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed"))
            }
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    let mut platform = Platform::testbed(nodes, ranks, servers);
    platform.stripe = stripe;
    platform.seed = seed;
    if let Some((mean, std)) = mem {
        platform = platform.with_memory(mean, std);
    }
    let workload = build_workload(&workload_spec, ranks);
    let strategy = Hints::parse(&hints_spec)
        .unwrap_or_else(|e| fail(&e.to_string()))
        .resolve(&platform.cluster, &platform.pfs, servers, stripe)
        .unwrap_or_else(|e| fail(&e.to_string()));

    println!(
        "platform : {nodes} nodes, {ranks} ranks, {servers} OSTs, {} stripes",
        fmt_bytes(stripe)
    );
    println!("workload : {}", workload.name());
    println!("strategy : {}", strategy.name());
    println!(
        "data     : {} total",
        fmt_bytes(workload.total_bytes(ranks))
    );

    let obs = ObsSink::enabled();
    let result = run_traced(workload.as_ref(), &*strategy, &platform, &obs);
    let records = derive_rounds(&obs);
    let writes: Vec<_> = records.iter().copied().filter(|r| r.is_write).collect();
    let reads: Vec<_> = records.iter().copied().filter(|r| !r.is_write).collect();

    println!();
    println!(
        "write    : {}  ({:.3} s virtual)",
        fmt_bandwidth(result.write_bw),
        result.write_secs
    );
    println!(
        "read     : {}  ({:.3} s virtual)",
        fmt_bandwidth(result.read_bw),
        result.read_secs
    );
    for (label, recs) in [("write", writes), ("read", reads)] {
        if recs.is_empty() {
            continue; // independent paths do not run the round engine
        }
        let s = OpSummary::of(&recs);
        println!(
            "{label} rounds: {} (vol {}, {} requests) — sync {:.1}ms, shuffle {:.1}ms, \
             storage {:.1}ms, assembly {:.1}ms",
            s.rounds,
            fmt_bytes(s.volume),
            s.requests,
            s.sync_secs * 1e3,
            s.shuffle_secs * 1e3,
            s.storage_secs * 1e3,
            s.assembly_secs * 1e3,
        );
    }
    let m = result.metrics;
    if m.any() {
        println!(
            "engine   : {} rounds, shuffle {}, storage {} in {} requests, \
             pool {}/{} hits",
            m.rounds,
            fmt_bytes(m.shuffle_bytes),
            fmt_bytes(m.storage_bytes),
            m.storage_requests,
            m.pool_hits,
            m.pool_hits + m.pool_misses,
        );
    }
    let peaks = result.peak_mem;
    if peaks.count() > 0 {
        println!(
            "peak aggregation memory per node: mean {}, max {}, cv {:.2}",
            fmt_bytes(peaks.mean() as u64),
            fmt_bytes(peaks.max() as u64),
            peaks.cv()
        );
    }
    println!(
        "network  : {} intra-node, {} inter-node, {} data msgs",
        fmt_bytes(result.traffic.intra_bytes),
        fmt_bytes(result.traffic.inter_bytes),
        result.traffic.data_msgs
    );
    if let Some(prefix) = trace_out {
        write_trace_artifacts(&prefix, &obs);
    }
}

/// Writes the run's trace as `<prefix>.json` (Chrome), `<prefix>.jsonl`
/// (event stream), and `<prefix>.html` (self-contained report), each
/// validated before it lands on disk.
fn write_trace_artifacts(prefix: &str, obs: &ObsSink) {
    use mccio_obs::{analyze, export, report};
    let events = obs.events();
    let chrome = export::chrome_trace(&events);
    export::validate_chrome_trace(&chrome)
        .unwrap_or_else(|e| fail(&format!("emitted Chrome trace is invalid: {e}")));
    let chrome_path = format!("{prefix}.json");
    std::fs::write(&chrome_path, &chrome)
        .unwrap_or_else(|e| fail(&format!("write {chrome_path}: {e}")));
    let jsonl = export::jsonl(&events);
    export::validate_jsonl(&jsonl)
        .unwrap_or_else(|e| fail(&format!("emitted JSONL is invalid: {e}")));
    let jsonl_path = format!("{prefix}.jsonl");
    std::fs::write(&jsonl_path, &jsonl)
        .unwrap_or_else(|e| fail(&format!("write {jsonl_path}: {e}")));
    let analysis = analyze::TraceAnalysis::of_sink(obs)
        .unwrap_or_else(|e| fail(&format!("trace analysis failed: {e}")));
    let replayable: Vec<analyze::TraceEvent> = {
        let mut sorted = events;
        mccio_obs::span::sort_for_export(&mut sorted);
        sorted.iter().map(analyze::TraceEvent::from_live).collect()
    };
    let html = report::render("mccio run report", &replayable, &analysis, None);
    let html_path = format!("{prefix}.html");
    std::fs::write(&html_path, &html).unwrap_or_else(|e| fail(&format!("write {html_path}: {e}")));
    println!("trace    : wrote {chrome_path}, {jsonl_path}, {html_path}");
}
