//! Chaos sweep: seeded aggregator crashes combined with transient
//! storage faults, swept across a seed grid, proving every recovery
//! path delivers the crash-free bytes.
//!
//! For each strategy the sweep first records a crash-free baseline run
//! and hashes the resulting file, then replays the same workload under
//! a grid of fault plans — one targeted mid-write crash plus two random
//! rank crashes inside the operation window plus a 2 % transient
//! storage-failure rate per seed — and asserts the recovered file
//! hashes to exactly the baseline value.
//! The per-run recovery counters (crashes detected, re-elections,
//! rounds replayed, ladder fallbacks, checksums verified) land in a
//! JSON artifact so CI can archive how hostile the grid actually was.
//!
//! ```text
//! cargo run --release -p mccio-bench --bin chaos [n_seeds] [outdir]
//! ```
//!
//! Exits non-zero if any recovered run's bytes differ from its
//! baseline, or if the whole grid failed to exercise crash detection
//! at least once (a silent no-op sweep must not pass as coverage).

use mccio_bench::{paper_pair, run_with, Platform};
use mccio_core::prelude::*;
use mccio_mpiio::{Resilience, SieveConfig};
use mccio_net::World;
use mccio_pfs::FileSystem;
use mccio_sim::cost::CostModel;
use mccio_sim::fault::FaultPlan;
use mccio_sim::time::VTime;
use mccio_sim::topology::{FillOrder, Placement};
use mccio_sim::units::MIB;
use mccio_workloads::{Ior, Workload};

/// Random crashes injected per seed, on top of one targeted crash of
/// rank `seed % n_ranks` at a time guaranteed to be mid-operation. The
/// targeted crash makes aggregator coverage deterministic — rank 0 is
/// an aggregator under both collectives, so a grid of ≥1 seed always
/// exercises detection — while the random ones supply the chaos. Three
/// dead ranks of sixteen leaves survivors on every node, so recovery
/// should re-elect rather than fall down the ladder; fallbacks are
/// reported, not asserted, because a seed that kills every candidate
/// of a small domain may legally descend.
const RANDOM_CRASHES_PER_SEED: usize = 2;

/// Virtual time of the targeted per-seed crash: inside the write phase
/// of every strategy at this scale.
const TARGETED_CRASH_SECS: f64 = 0.01;

/// Transient storage-failure rate combined with every crash schedule.
const TRANSIENT_RATE: f64 = 0.02;

struct Row {
    strategy: String,
    seed: u64,
    hash_ok: bool,
    write_secs: f64,
    read_secs: f64,
    res: Resilience,
}

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let outdir = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "chaos_out".to_string());
    std::fs::create_dir_all(&outdir).expect("create outdir");

    let platform = Platform::testbed(4, 16, 4).with_memory(64 * MIB, 16 * MIB);
    // Interleaved IOR (the fig7 access pattern) at a bounded scale: the
    // sweep runs 3 strategies x (1 baseline + n_seeds) full runs.
    let workload = Ior::interleaved_total(MIB, 4);
    let strategies = all_three(&platform);
    eprintln!(
        "chaos: {} strategies x {n_seeds} seeds, {} crashes + {:.0}% transient per seed",
        strategies.len(),
        RANDOM_CRASHES_PER_SEED + 1,
        TRANSIENT_RATE * 100.0
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut mismatches = 0u64;
    for (name, strategy) in &strategies {
        let (baseline_hash, baseline) = execute(&platform, &workload, &**strategy, None);
        eprintln!(
            "  {name}: baseline hash {baseline_hash:#018x} (w {:.6}s r {:.6}s)",
            baseline.0, baseline.1
        );
        for seed in 0..n_seeds {
            let plan = FaultPlan::new(0xC4A0_5000 + seed)
                .crash_rank_at(
                    VTime::from_secs(TARGETED_CRASH_SECS),
                    seed as usize % platform.n_ranks,
                )
                .random_crashes(
                    RANDOM_CRASHES_PER_SEED,
                    platform.n_ranks,
                    VTime::ZERO,
                    VTime::from_secs(0.05),
                )
                .transient_io_rate(TRANSIENT_RATE);
            let (hash, (w, r, res)) = execute(&platform, &workload, &**strategy, Some(plan));
            let hash_ok = hash == baseline_hash;
            if !hash_ok {
                mismatches += 1;
                eprintln!(
                    "  {name} seed {seed}: HASH MISMATCH {hash:#018x} != {baseline_hash:#018x}"
                );
            }
            rows.push(Row {
                strategy: name.clone(),
                seed,
                hash_ok,
                write_secs: w,
                read_secs: r,
                res,
            });
        }
    }

    let total: Resilience = rows.iter().fold(Resilience::default(), |mut acc, row| {
        acc.absorb(row.res);
        acc
    });
    let json = render_json(n_seeds, mismatches, &total, &rows);
    let path = format!("{outdir}/chaos.json");
    std::fs::write(&path, &json).expect("write chaos json");
    println!("{json}");
    eprintln!(
        "chaos: {} runs, {} mismatches, {} crashes detected, {} re-elections, \
         {} rounds replayed, {} payload checksums verified -> {path}",
        rows.len(),
        mismatches,
        total.crashes_detected,
        total.reelections,
        total.rounds_replayed,
        total.integrity_verified,
    );
    if mismatches > 0 {
        eprintln!("chaos: FAILED - recovered bytes differ from crash-free baseline");
        std::process::exit(1);
    }
    // Coverage gate: each collective must have detected crashes
    // somewhere in the grid, or the sweep silently stopped testing
    // recovery (sieved has no aggregators, so it is exempt by design).
    for (name, _) in &strategies {
        if name == "sieved" {
            continue;
        }
        let detected: u64 = rows
            .iter()
            .filter(|row| &row.strategy == name)
            .map(|row| row.res.crashes_detected)
            .sum();
        if detected == 0 {
            eprintln!("chaos: FAILED - {name} never detected a crash; widen the window");
            std::process::exit(1);
        }
    }
}

/// The three strategies of the paper's comparison. Independent sieving
/// has no aggregator roles to crash, so it pins the sweep's control
/// case: crashes are no-ops yet the checksum contract must still hold.
fn all_three(platform: &Platform) -> Vec<(String, Box<dyn Strategy>)> {
    let mut v: Vec<(String, Box<dyn Strategy>)> = vec![(
        "sieved".to_string(),
        Box::new(IndependentSieved(SieveConfig::default())),
    )];
    v.extend(paper_pair(platform, 4 * MIB));
    v
}

/// One full write+read run under `plan` (crash-free when `None`),
/// returning the file hash and `(write_secs, read_secs, resilience)`.
fn execute(
    platform: &Platform,
    workload: &dyn Workload,
    strategy: &dyn Strategy,
    plan: Option<FaultPlan>,
) -> (u64, (f64, f64, Resilience)) {
    let placement = Placement::new(&platform.cluster, platform.n_ranks, FillOrder::Block)
        .expect("platform placement");
    let world = World::new(CostModel::new(platform.cluster.clone()), placement);
    let fs = FileSystem::new(platform.n_servers, platform.stripe, platform.pfs);
    let mem = platform.memory();
    let env = match plan {
        Some(p) => IoEnv::with_faults(fs, mem, p),
        None => IoEnv::new(fs, mem),
    };
    let result = run_with(&world, &env, workload, strategy);
    let file = format!("bench-{}-{}", workload.name(), strategy.name());
    let handle = env.fs.open(&file).expect("run created the file");
    let (bytes, _) = handle.read_at(0, handle.len());
    (
        fnv1a(&bytes),
        (result.write_secs, result.read_secs, result.resilience),
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hand-rolled JSON (the workspace is dependency-free by design).
fn render_json(n_seeds: u64, mismatches: u64, total: &Resilience, rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"chaos\",");
    let _ = writeln!(out, "  \"seeds\": {n_seeds},");
    let _ = writeln!(
        out,
        "  \"crashes_per_seed\": {},",
        RANDOM_CRASHES_PER_SEED + 1
    );
    let _ = writeln!(out, "  \"transient_rate\": {TRANSIENT_RATE},");
    let _ = writeln!(out, "  \"mismatches\": {mismatches},");
    let _ = writeln!(
        out,
        "  \"total_crashes_detected\": {},",
        total.crashes_detected
    );
    let _ = writeln!(out, "  \"total_reelections\": {},", total.reelections);
    let _ = writeln!(
        out,
        "  \"total_rounds_replayed\": {},",
        total.rounds_replayed
    );
    let _ = writeln!(
        out,
        "  \"total_integrity_verified\": {},",
        total.integrity_verified
    );
    let _ = writeln!(out, "  \"runs\": [");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{}\", \"seed\": {}, \"hash_ok\": {}, \
             \"write_secs\": {:.9}, \"read_secs\": {:.9}, \
             \"crashes_detected\": {}, \"reelections\": {}, \"rounds_replayed\": {}, \
             \"fallbacks\": {}, \"transient_faults\": {}, \"integrity_verified\": {}}}{sep}",
            row.strategy,
            row.seed,
            row.hash_ok,
            row.write_secs,
            row.read_secs,
            row.res.crashes_detected,
            row.res.reelections,
            row.res.rounds_replayed,
            row.res.fallbacks,
            row.res.transient_faults,
            row.res.integrity_verified,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
