//! Strategy comparison benches: every I/O strategy on miniature
//! versions of the paper's workloads. These measure the *wall-clock* of
//! the simulation (Criterion's normal metric); the virtual-time
//! bandwidths the paper plots come from the `fig6`/`fig7`/`fig8`
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mccio_bench::{run, Platform};
use mccio_core::prelude::*;
use mccio_mpiio::SieveConfig;
use mccio_sim::units::{KIB, MIB};
use mccio_workloads::{CollPerf, Ior, IorMode, Workload};

fn platform() -> Platform {
    Platform::testbed(2, 24, 4).with_memory(256 * MIB, 64 * MIB)
}

fn strategies(platform: &Platform) -> Vec<(&'static str, Strategy)> {
    let tuning = platform.tuning();
    vec![
        ("independent", Strategy::Independent),
        ("sieved", Strategy::IndependentSieved(SieveConfig::default())),
        (
            "two-phase",
            Strategy::TwoPhase(TwoPhaseConfig::with_buffer(MIB)),
        ),
        (
            "memory-conscious",
            Strategy::MemoryConscious(Box::new(MccioConfig::new(tuning, MIB, MIB))),
        ),
    ]
}

fn bench_ior(c: &mut Criterion) {
    let platform = platform();
    let ior = Ior::new(64 * KIB, 4, IorMode::Interleaved);
    let mut group = c.benchmark_group("ior-interleaved-24ranks");
    for (name, strategy) in strategies(&platform) {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run(&ior, &strategy, &platform)))
        });
    }
    group.finish();
}

fn bench_coll_perf(c: &mut Criterion) {
    let platform = platform();
    let workload = CollPerf::cube(48, 24, 4);
    let mut group = c.benchmark_group("coll_perf-48cubed-24ranks");
    for (name, strategy) in strategies(&platform) {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run(&workload, &strategy, &platform)))
        });
    }
    group.finish();
}

fn bench_random_ior(c: &mut Criterion) {
    let platform = platform();
    let ior = Ior::new(32 * KIB, 8, IorMode::Random(5));
    let mut group = c.benchmark_group("ior-random-24ranks");
    for (name, strategy) in strategies(&platform) {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run(&ior, &strategy, &platform)))
        });
    }
    group.finish();
}

/// Also record the virtual-time bandwidths once per strategy so bench
/// logs double as a sanity table.
fn report_virtual_bandwidths(c: &mut Criterion) {
    let platform = platform();
    let ior = Ior::new(64 * KIB, 4, IorMode::Interleaved);
    // Print once, outside measurement.
    for (name, strategy) in strategies(&platform) {
        let r = run(&ior, &strategy, &platform);
        eprintln!(
            "[virtual] {name:>18}: write {:8.1} MB/s  read {:8.1} MB/s  ({} B)",
            r.write_mbps(),
            r.read_mbps(),
            r.total_bytes
        );
    }
    // Keep criterion happy with a trivial measurement.
    c.bench_function("report/noop", |b| b.iter(|| black_box(1 + 1)));
    let _ = Workload::total_bytes(&ior, 24);
}

criterion_group!(
    name = strategies_group;
    config = Criterion::default().sample_size(10);
    targets = bench_ior, bench_coll_perf, bench_random_ior, report_virtual_bandwidths
);
criterion_main!(strategies_group);
