//! Strategy comparison benches: every I/O strategy on miniature
//! versions of the paper's workloads. These measure the *wall-clock* of
//! the simulation; the virtual-time bandwidths the paper plots come
//! from the `fig6`/`fig7`/`fig8` binaries.
//!
//! Self-contained harness (`harness = false`): each scenario is run a
//! fixed number of iterations around `std::time::Instant`, keeping the
//! workspace free of external dependencies so `cargo bench --offline`
//! works in network-restricted environments.

use std::time::Instant;

use mccio_bench::{run, Platform};
use mccio_core::prelude::*;
use mccio_mpiio::SieveConfig;
use mccio_sim::units::{KIB, MIB};
use mccio_workloads::{CollPerf, Ior, IorMode, Workload};

const ITERS: u32 = 10;

fn platform() -> Platform {
    Platform::testbed(2, 24, 4).with_memory(256 * MIB, 64 * MIB)
}

fn strategies(platform: &Platform) -> Vec<(&'static str, Box<dyn Strategy>)> {
    let tuning = platform.tuning();
    vec![
        ("independent", Box::new(Independent) as Box<dyn Strategy>),
        (
            "sieved",
            Box::new(IndependentSieved(SieveConfig::default())),
        ),
        (
            "two-phase",
            Box::new(TwoPhase(TwoPhaseConfig::with_buffer(MIB))),
        ),
        (
            "memory-conscious",
            Box::new(MemoryConscious(MccioConfig::new(tuning, MIB, MIB))),
        ),
    ]
}

/// Times `iters` runs of `f`, printing mean wall-clock per iteration.
fn bench(group: &str, name: &str, iters: u32, mut f: impl FnMut()) {
    // One warmup to populate caches and the file system.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / f64::from(iters);
    println!("{group}/{name}: {:.3} ms/iter ({iters} iters)", per * 1e3);
}

fn bench_workload(group: &str, workload: &impl Workload, platform: &Platform) {
    for (name, strategy) in strategies(platform) {
        bench(group, name, ITERS, || {
            let _ = run(workload, &*strategy, platform);
        });
    }
}

/// Also record the virtual-time bandwidths once per strategy so bench
/// logs double as a sanity table.
fn report_virtual_bandwidths(platform: &Platform) {
    let ior = Ior::new(64 * KIB, 4, IorMode::Interleaved);
    for (name, strategy) in strategies(platform) {
        let r = run(&ior, &*strategy, platform);
        println!(
            "[virtual] {name:>18}: write {:8.1} MB/s  read {:8.1} MB/s  ({} B)",
            r.write_mbps(),
            r.read_mbps(),
            r.total_bytes
        );
    }
}

fn main() {
    let platform = platform();
    bench_workload(
        "ior-interleaved-24ranks",
        &Ior::new(64 * KIB, 4, IorMode::Interleaved),
        &platform,
    );
    bench_workload(
        "coll_perf-48cubed-24ranks",
        &CollPerf::cube(48, 24, 4),
        &platform,
    );
    bench_workload(
        "ior-random-24ranks",
        &Ior::new(32 * KIB, 8, IorMode::Random(5)),
        &platform,
    );
    report_virtual_bandwidths(&platform);
}
