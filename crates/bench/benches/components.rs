//! Component microbenchmarks: the data-structure and cost-model
//! operations on the hot paths of every collective operation.
//!
//! Self-contained harness (`harness = false`); see `strategies.rs`.

use std::hint::black_box;
use std::time::Instant;

use mccio_core::ptree::PartitionTree;
use mccio_mpiio::{Datatype, Extent, ExtentList};
use mccio_pfs::Striping;
use mccio_sim::cost::{CostModel, Flow};
use mccio_sim::rng::{stream_rng, NormalSampler};
use mccio_sim::topology::{test_cluster, FillOrder, Placement};
use mccio_sim::units::MIB;

/// Times `iters` runs of `f`, printing mean wall-clock per iteration.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / f64::from(iters);
    println!("{name}: {:.3} µs/iter ({iters} iters)", per * 1e6);
}

fn bench_striping() {
    let striping = Striping::new(16, MIB);
    bench("striping/map_range 1GiB", 1000, || {
        black_box(striping.map_range(black_box(12345), 1 << 30));
    });
    bench("striping/locate", 100_000, || {
        black_box(striping.locate(black_box(987_654_321)));
    });
}

fn bench_extents() {
    let raw: Vec<Extent> = (0..10_000u64)
        .rev()
        .map(|i| Extent::new(i * 100, 60))
        .collect();
    bench("extents/normalize 10k", 100, || {
        black_box(ExtentList::normalize(raw.clone()));
    });
    let list = ExtentList::normalize(raw.clone());
    bench("extents/clip mid-window", 10_000, || {
        black_box(list.clip(Extent::new(500_000, 10_000)));
    });
    bench("extents/overlaps", 100_000, || {
        black_box(list.overlaps(Extent::new(black_box(777_777), 50)));
    });
}

fn bench_datatype() {
    let subarray = Datatype::Subarray {
        sizes: vec![128, 128, 128],
        subsizes: vec![32, 32, 32],
        starts: vec![64, 64, 64],
        elem_size: 8,
    };
    bench("datatype/flatten subarray 32^3", 1000, || {
        black_box(subarray.flatten(0));
    });
}

fn bench_ptree() {
    bench("ptree/build 1GiB at 4MiB leaves", 1000, || {
        black_box(PartitionTree::build(Extent::new(0, 1 << 30), 4 * MIB, MIB));
    });
    bench("ptree/remerge half the leaves", 1000, || {
        let mut t = PartitionTree::build(Extent::new(0, 64 * MIB), MIB, MIB);
        while t.n_leaves() > 32 {
            let leaves = t.leaves();
            let _ = t.remerge(leaves[leaves.len() / 2]);
        }
        black_box(t.n_leaves());
    });
}

fn bench_cost() {
    let cluster = test_cluster(16, 8);
    let placement = Placement::new(&cluster, 128, FillOrder::Block).unwrap();
    let model = CostModel::new(cluster);
    let flows: Vec<Flow> = (0..128)
        .flat_map(|src| {
            (0..16).map(move |agg| Flow {
                src,
                dst: agg * 8,
                bytes: 64 * 1024,
            })
        })
        .collect();
    bench("cost/shuffle_phase 2k flows", 1000, || {
        black_box(model.shuffle_phase(&placement, &flows, &[]));
    });
}

fn bench_rng() {
    let mut rng = stream_rng(1, "bench");
    let mut s = NormalSampler::new(100.0, 15.0);
    bench("rng/normal sample", 1_000_000, || {
        black_box(s.sample(&mut rng));
    });
}

fn main() {
    bench_striping();
    bench_extents();
    bench_datatype();
    bench_ptree();
    bench_cost();
    bench_rng();
}
