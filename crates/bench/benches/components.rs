//! Component microbenchmarks: the data-structure and cost-model
//! operations on the hot paths of every collective operation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mccio_core::ptree::PartitionTree;
use mccio_mpiio::{Datatype, Extent, ExtentList};
use mccio_pfs::Striping;
use mccio_sim::cost::{CostModel, Flow};
use mccio_sim::rng::{stream_rng, NormalSampler};
use mccio_sim::topology::{test_cluster, FillOrder, Placement};
use mccio_sim::units::MIB;

fn bench_striping(c: &mut Criterion) {
    let striping = Striping::new(16, MIB);
    c.bench_function("striping/map_range 1GiB", |b| {
        b.iter(|| black_box(striping.map_range(black_box(12345), 1 << 30)))
    });
    c.bench_function("striping/locate", |b| {
        b.iter(|| black_box(striping.locate(black_box(987_654_321))))
    });
}

fn bench_extents(c: &mut Criterion) {
    let raw: Vec<Extent> = (0..10_000u64)
        .rev()
        .map(|i| Extent::new(i * 100, 60))
        .collect();
    c.bench_function("extents/normalize 10k", |b| {
        b.iter_batched(
            || raw.clone(),
            |v| black_box(ExtentList::normalize(v)),
            BatchSize::SmallInput,
        )
    });
    let list = ExtentList::normalize(raw);
    c.bench_function("extents/clip mid-window", |b| {
        b.iter(|| black_box(list.clip(Extent::new(500_000, 10_000))))
    });
    c.bench_function("extents/overlaps", |b| {
        b.iter(|| black_box(list.overlaps(Extent::new(black_box(777_777), 50))))
    });
}

fn bench_datatype(c: &mut Criterion) {
    let subarray = Datatype::Subarray {
        sizes: vec![128, 128, 128],
        subsizes: vec![32, 32, 32],
        starts: vec![64, 64, 64],
        elem_size: 8,
    };
    c.bench_function("datatype/flatten subarray 32^3", |b| {
        b.iter(|| black_box(subarray.flatten(0)))
    });
}

fn bench_ptree(c: &mut Criterion) {
    c.bench_function("ptree/build 1GiB at 4MiB leaves", |b| {
        b.iter(|| black_box(PartitionTree::build(Extent::new(0, 1 << 30), 4 * MIB, MIB)))
    });
    c.bench_function("ptree/remerge half the leaves", |b| {
        b.iter_batched(
            || PartitionTree::build(Extent::new(0, 64 * MIB), MIB, MIB),
            |mut t| {
                while t.n_leaves() > 32 {
                    let leaves = t.leaves();
                    let _ = t.remerge(leaves[leaves.len() / 2]);
                }
                black_box(t.n_leaves())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cost(c: &mut Criterion) {
    let cluster = test_cluster(16, 8);
    let placement = Placement::new(&cluster, 128, FillOrder::Block).unwrap();
    let model = CostModel::new(cluster);
    let flows: Vec<Flow> = (0..128)
        .flat_map(|src| (0..16).map(move |agg| Flow { src, dst: agg * 8, bytes: 64 * 1024 }))
        .collect();
    c.bench_function("cost/shuffle_phase 2k flows", |b| {
        b.iter(|| black_box(model.shuffle_phase(&placement, &flows, &[])))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/normal sample", |b| {
        let mut rng = stream_rng(1, "bench");
        let mut s = NormalSampler::new(100.0, 15.0);
        b.iter(|| black_box(s.sample(&mut rng)))
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_striping, bench_extents, bench_datatype, bench_ptree, bench_cost, bench_rng
);
criterion_main!(components);
