//! Ablation benches for the design choices DESIGN.md calls out. Each
//! ablation runs the full simulation and reports the *virtual-time*
//! bandwidth (the decision-relevant number) alongside the wall-clock of
//! the run.
//!
//! Self-contained harness (`harness = false`); see `strategies.rs`.
//!
//! Ablations:
//! * group division on/off (`Msg_group` = tuned vs effectively infinite);
//! * memory-aware aggregator placement vs data-oblivious round-robin
//!   placement of the same domains;
//! * remerging on/off under memory-starved nodes (`Mem_min` = tuned vs 0);
//! * `N_ah` sweep (aggregators per node);
//! * `Msg_ind` sweep (partition-tree leaf size).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use mccio_bench::{run, run_with, Platform, RunResult};
use mccio_core::engine::{execute_read, execute_write, IoEnv};
use mccio_core::mccio::plan_mccio;
use mccio_core::prelude::*;
use mccio_mem::MemoryModel;
use mccio_sim::cost::CostModel;
use mccio_sim::topology::{FillOrder, Placement};
use mccio_sim::units::{KIB, MIB};
use mccio_workloads::{data, Ior, IorMode, Workload};

const ITERS: u32 = 10;

fn platform() -> Platform {
    Platform::testbed(4, 48, 8).with_memory(128 * MIB, 48 * MIB)
}

fn workload() -> Ior {
    Ior::new(64 * KIB, 8, IorMode::Interleaved)
}

fn mc(platform: &Platform, tuning: Tuning) -> MemoryConscious {
    MemoryConscious(MccioConfig::new(tuning, MIB, platform.stripe))
}

fn report(tag: &str, r: &RunResult) {
    println!(
        "[ablation] {tag:>40}: write {:8.1} MB/s  read {:8.1} MB/s",
        r.write_mbps(),
        r.read_mbps()
    );
}

/// Times `iters` runs of `f`, printing mean wall-clock per iteration.
fn bench(group: &str, name: &str, mut f: impl FnMut()) {
    f();
    let t0 = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / f64::from(ITERS);
    println!("{group}/{name}: {:.3} ms/iter ({ITERS} iters)", per * 1e3);
}

fn bench_group_division() {
    // Group confinement matters when data is serially distributed (each
    // group has distinct members) and some nodes are starved: with
    // groups, a domain evicted from its starved local host lands on a
    // *nearby* group host; without, it can land anywhere.
    let mut platform = platform();
    platform.mem_available = Some((48 * MIB, 32 * MIB));
    let serial = Ior::new(512 * KIB, 2, IorMode::Segmented);
    let tuned = platform.tuning();
    let global = tuned.with_msg_group(1 << 40); // one group = no confinement
    for (name, tuning) in [("tuned-groups", tuned), ("single-group", global)] {
        let strategy = mc(&platform, tuning);
        report(
            &format!("group-division/{name}"),
            &run(&serial, &strategy, &platform),
        );
        bench("ablation-group-division", name, || {
            black_box(run(&serial, &strategy, &platform));
        });
    }
}

fn bench_placement_awareness() {
    // Memory-aware placement vs round-robin placement of the *same*
    // domain layout, on a cluster with a badly starved node.
    let platform = platform();
    let ior = workload();
    let tuning = platform.tuning();
    let cfg = MccioConfig::new(tuning, MIB, platform.stripe);
    let placement = Placement::new(&platform.cluster, platform.n_ranks, FillOrder::Block).unwrap();
    let cluster = platform.cluster.clone();
    let starved = MemoryModel::build(
        &cluster,
        |node, cap| if node == 1 { cap - MIB } else { cap / 2 },
        mccio_mem::MemParams::default(),
    );

    let run_custom = |oblivious: bool| -> f64 {
        let world = World::new(CostModel::new(cluster.clone()), placement.clone());
        let env = IoEnv::new(
            FileSystem::new(platform.n_servers, platform.stripe, platform.pfs),
            starved.clone(),
        );
        let n = world.n_ranks();
        let reports = world.run(|ctx| {
            let env = env.clone();
            let handle = env.fs.open_or_create("ablation-placement");
            let extents = ior.extents(ctx.rank(), n);
            let payload = data::fill(&extents);
            let pattern = mccio_mpiio::GroupPattern::gather(ctx, &RankSet::world(n), &extents);
            let mut plan = plan_mccio(&pattern, ctx.placement(), &env.mem, &cfg);
            if oblivious {
                // Round-robin the same domains over first-rank-per-node,
                // ignoring memory entirely (includes the starved node).
                let nodes = ctx.placement().n_nodes();
                for (i, d) in plan.domains.iter_mut().enumerate() {
                    d.aggregator = ctx.placement().ranks_on(i % nodes)[0];
                }
            }
            let w = execute_write(ctx, &env, &handle, &plan, &pattern, &extents, &payload);
            let (_, r) = execute_read(ctx, &env, &handle, &plan, &pattern, &extents);
            (w, r)
        });
        let total = Workload::total_bytes(&ior, n) as f64;
        let secs = reports
            .iter()
            .map(|(w, _)| w.elapsed.as_secs())
            .fold(0.0, f64::max);
        total / secs / MIB as f64
    };

    let aware = run_custom(false);
    let oblivious = run_custom(true);
    println!(
        "[ablation] placement/memory-aware: write {aware:8.1} MB/s  vs round-robin {oblivious:8.1} MB/s"
    );
    bench("ablation-placement", "memory-aware", || {
        black_box(run_custom(false));
    });
    bench("ablation-placement", "round-robin", || {
        black_box(run_custom(true));
    });
}

fn bench_remerge() {
    // Remerging on/off with one node far below Mem_min.
    let mut platform = platform();
    platform.mem_available = Some((32 * MIB, 24 * MIB)); // plenty of starved nodes
    let ior = workload();
    // Raise Mem_min to a level the starved nodes actually fail, so the
    // remerge/relocation path runs; Mem_min = 0 accepts every host.
    let tuned = platform.tuning().with_msg_ind(8 * MIB);
    let no_remerge = Tuning {
        mem_min: 0,
        ..tuned
    };
    for (name, tuning) in [("mem-min-tuned", tuned), ("mem-min-zero", no_remerge)] {
        let strategy = mc(&platform, tuning);
        report(&format!("remerge/{name}"), &run(&ior, &strategy, &platform));
        bench("ablation-remerge", name, || {
            black_box(run(&ior, &strategy, &platform));
        });
    }
}

fn bench_n_ah_sweep() {
    let platform = platform();
    let ior = workload();
    let tuned = platform.tuning();
    for n_ah in [1usize, 2, 4, 8] {
        let tuning = tuned.with_n_ah(n_ah);
        let strategy = mc(&platform, tuning);
        report(&format!("n_ah/{n_ah}"), &run(&ior, &strategy, &platform));
        bench("ablation-n-ah", &format!("n_ah-{n_ah}"), || {
            black_box(run(&ior, &strategy, &platform));
        });
    }
}

fn bench_msg_ind_sweep() {
    let platform = platform();
    let ior = workload();
    let tuned = platform.tuning();
    for mib in [1u64, 4, 16] {
        let tuning = tuned.with_msg_ind(mib * MIB);
        let strategy = mc(&platform, tuning);
        report(
            &format!("msg_ind/{mib}MiB"),
            &run(&ior, &strategy, &platform),
        );
        bench("ablation-msg-ind", &format!("msg_ind-{mib}MiB"), || {
            black_box(run(&ior, &strategy, &platform));
        });
    }
}

fn bench_layout_alignment() {
    // Plain two-phase vs the layout-aware variant (domain boundaries
    // snapped to the stripe unit): alignment removes the split-stripe
    // requests at every domain boundary.
    let platform = platform();
    let ior = workload();
    for (name, cfg) in [
        ("unaligned", TwoPhaseConfig::with_buffer(MIB)),
        (
            "stripe-aligned",
            TwoPhaseConfig::layout_aware(MIB, platform.stripe),
        ),
    ] {
        let strategy = TwoPhase(cfg);
        report(
            &format!("alignment/{name}"),
            &run(&ior, &strategy, &platform),
        );
        bench("ablation-layout-alignment", name, || {
            black_box(run(&ior, &strategy, &platform));
        });
    }
}

fn bench_shared_world_reuse() {
    // run_with: amortizing world construction across runs.
    let platform = platform();
    let ior = workload();
    let placement = Placement::new(&platform.cluster, platform.n_ranks, FillOrder::Block).unwrap();
    let world: Arc<World> = World::new(CostModel::new(platform.cluster.clone()), placement);
    let strategy = TwoPhase(TwoPhaseConfig::with_buffer(MIB));
    bench("harness", "run_with-shared-world", || {
        let env = IoEnv::new(
            FileSystem::new(platform.n_servers, platform.stripe, platform.pfs),
            platform.memory(),
        );
        black_box(run_with(&world, &env, &ior, &strategy));
    });
}

fn main() {
    bench_group_division();
    bench_placement_awareness();
    bench_remerge();
    bench_n_ah_sweep();
    bench_msg_ind_sweep();
    bench_layout_alignment();
    bench_shared_world_reuse();
}
