//! # mccio-mem — per-node memory model
//!
//! The paper's whole premise is that at extreme scale, memory per core
//! collapses to megabytes and *available* memory varies widely across
//! nodes; collective I/O aggregation buffers then become a first-order
//! resource. This crate models exactly that:
//!
//! * a [`MemoryModel`] tracks, per node, the physical capacity, the memory
//!   already consumed by the application (sampled with the Normal(μ, σ)
//!   variance the paper's evaluation uses), and the bytes currently
//!   reserved for aggregation buffers;
//! * [`MemoryModel::reserve`] hands out RAII [`Reservation`]s —
//!   reservations always *succeed* (a real aggregator can always malloc
//!   and page), but oversubscribing a node drives its
//!   [`MemoryModel::pressure_factor`] above 1.0, which the cost model in
//!   `mccio-sim` uses to stretch that node's DRAM time (paging: the
//!   overflowed fraction of every buffer touch runs at swap speed);
//! * high-water marks and cross-node statistics feed the paper's "memory
//!   consumption and variance among processes" measurements.
//!
//! Everything is thread-safe (per-node locks) because rank threads
//! reserve and release concurrently, and deterministic: the sampled
//! availability depends only on `(cluster, mean, stddev, seed)`.
//!
//! Fault injection adds two things on top of the paging model:
//! [`MemoryModel::try_reserve`] refuses rather than pages (the engine's
//! retry/degradation ladder decides what to do), and
//! [`MemoryModel::revoke`]/[`MemoryModel::restore`] let a fault plan
//! reclaim and return application memory mid-run.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mccio_sim::sync::Mutex;

use mccio_sim::rng::{stream_rng, NormalSampler};
use mccio_sim::stats::Welford;
use mccio_sim::topology::ClusterSpec;
use mccio_sim::units::MIB;

/// Tuning knobs for the pressure model.
#[derive(Debug, Clone, Copy)]
pub struct MemParams {
    /// Ratio of DRAM bandwidth to swap/backing-store bandwidth. The
    /// overflowed fraction of buffer traffic runs this much slower.
    /// Default 50 (25 GB/s DRAM vs ~500 MB/s swap device).
    pub swap_slowdown: f64,
    /// Fraction of a node's capacity the OS and runtime hold at boot;
    /// folded into the baseline usage by [`MemoryModel::pristine`].
    /// Default 5 %.
    pub os_reserve_fraction: f64,
}

impl Default for MemParams {
    fn default() -> Self {
        MemParams {
            swap_slowdown: 50.0,
            os_reserve_fraction: 0.05,
        }
    }
}

#[derive(Debug)]
struct NodeMem {
    /// Physical capacity in bytes.
    capacity: u64,
    /// Bytes the application (and OS) already use — the source of
    /// cross-node variance.
    app_used: u64,
    /// Bytes currently reserved for aggregation buffers.
    reserved: u64,
    /// Largest value `reserved` ever reached.
    peak_reserved: u64,
}

impl NodeMem {
    fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.app_used + self.reserved)
    }
}

/// Thread-safe per-node memory ledger. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone)]
pub struct MemoryModel {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Mutex<NodeMem>>,
    params: MemParams,
    /// Bumped on every availability-changing mutation; see
    /// [`MemoryModel::state_fingerprint`].
    version: AtomicU64,
    /// Memoized [`MemoryModel::peak_statistics`] keyed by the version it
    /// was computed at. Every rank reads the statistic once per
    /// operation epilogue; without the memo that is an
    /// `O(ranks × nodes)` lock sweep per collective.
    peak_memo: Mutex<Option<(u64, Welford)>>,
}

impl MemoryModel {
    /// A model where every node starts with its full capacity available
    /// minus the OS/runtime share ([`MemParams::os_reserve_fraction`]).
    #[must_use]
    pub fn pristine(cluster: &ClusterSpec) -> Self {
        let params = MemParams::default();
        let frac = params.os_reserve_fraction;
        Self::build(cluster, |_, cap| (cap as f64 * frac) as u64, params)
    }

    /// A model whose per-node *available* memory is sampled from
    /// Normal(`mean_available`, `stddev`²) bytes, clamped to
    /// `[256 KiB, capacity]` — the paper's evaluation setup ("memory
    /// buffer sizes for processes were set up as random variables
    /// following a normal distribution").
    ///
    /// `seed` makes the draw reproducible.
    #[must_use]
    pub fn with_available_variance(
        cluster: &ClusterSpec,
        mean_available: u64,
        stddev: u64,
        seed: u64,
    ) -> Self {
        let mut rng = stream_rng(seed, "node-available-memory");
        let mut sampler = NormalSampler::new(mean_available as f64, stddev as f64);
        let draws: Vec<u64> = cluster
            .nodes
            .iter()
            .map(|spec| {
                let floor = (MIB / 4) as f64;
                sampler.sample_clamped(&mut rng, floor, spec.mem_capacity as f64) as u64
            })
            .collect();
        let mut i = 0;
        Self::build(
            cluster,
            move |_, cap| {
                let avail = draws[i];
                i += 1;
                cap.saturating_sub(avail)
            },
            MemParams::default(),
        )
    }

    /// Full-control constructor: `app_used(node_idx, capacity)` returns
    /// the pre-existing memory consumption of each node.
    #[must_use]
    pub fn build(
        cluster: &ClusterSpec,
        mut app_used: impl FnMut(usize, u64) -> u64,
        params: MemParams,
    ) -> Self {
        let nodes = cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(idx, spec)| {
                let used = app_used(idx, spec.mem_capacity).min(spec.mem_capacity);
                Mutex::new(NodeMem {
                    capacity: spec.mem_capacity,
                    app_used: used,
                    reserved: 0,
                    peak_reserved: 0,
                })
            })
            .collect();
        MemoryModel {
            inner: Arc::new(Inner {
                nodes,
                params,
                version: AtomicU64::new(0),
                peak_memo: Mutex::new(None),
            }),
        }
    }

    /// Marks an availability-changing mutation. Relaxed is enough: the
    /// fingerprint is only meaningful at points where the mutating calls
    /// are already ordered before the reading call (collective planning
    /// windows), never as a synchronization edge of its own.
    fn touch(&self) {
        self.inner.version.fetch_add(1, Ordering::Relaxed);
    }

    /// An identity-plus-version stamp of this model's availability
    /// state: two equal fingerprints from the same process observe the
    /// same `available()` values on every node (versions only grow, and
    /// the pointer half distinguishes distinct models). Plan caches use
    /// this to recognize that a re-plan would see exactly the memory
    /// landscape an existing plan was computed against.
    #[must_use]
    pub fn state_fingerprint(&self) -> (usize, u64) {
        (
            Arc::as_ptr(&self.inner) as usize,
            self.inner.version.load(Ordering::Relaxed),
        )
    }

    /// Number of nodes tracked.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Bytes of memory currently available for aggregation on `node`
    /// (capacity − application/OS usage − existing reservations). This
    /// is the paper's `Mem_avl`. The OS share is folded into the
    /// baseline usage at construction ([`MemoryModel::pristine`] uses
    /// [`MemParams::os_reserve_fraction`]); constructors that sample
    /// *availability* directly deliver exactly what they sampled.
    #[must_use]
    pub fn available(&self, node: usize) -> u64 {
        self.inner.nodes[node].lock().free()
    }

    /// Reserves `bytes` of aggregation memory on `node`, returning an
    /// RAII guard that releases on drop.
    ///
    /// Reservations never fail: like a real `malloc`, an oversubscribed
    /// node pages instead. Check [`MemoryModel::pressure_factor`] for the
    /// consequences.
    #[must_use]
    pub fn reserve(&self, node: usize, bytes: u64) -> Reservation {
        {
            let mut n = self.inner.nodes[node].lock();
            n.reserved += bytes;
            n.peak_reserved = n.peak_reserved.max(n.reserved);
        }
        self.touch();
        Reservation {
            model: self.clone(),
            node,
            bytes,
        }
    }

    /// Fallible reservation for fault-aware callers: succeeds only when
    /// `bytes` genuinely fit in the node's free memory, with no paging
    /// escape hatch. The collective engine uses this under fault
    /// injection so a revocation forces an explicit re-plan instead of
    /// silently thrashing.
    ///
    /// Whether a set of concurrent `try_reserve` calls can all succeed
    /// depends only on the demanded totals, never on arrival order, so
    /// collective reservation outcomes are schedule-independent when
    /// (as in the engine) failure of any rank releases and retries all.
    #[must_use]
    pub fn try_reserve(&self, node: usize, bytes: u64) -> Option<Reservation> {
        {
            let mut n = self.inner.nodes[node].lock();
            if bytes > n.free() {
                return None;
            }
            n.reserved += bytes;
            n.peak_reserved = n.peak_reserved.max(n.reserved);
        }
        self.touch();
        Some(Reservation {
            model: self.clone(),
            node,
            bytes,
        })
    }

    /// A fault plan reclaims `bytes` of `node`'s memory (the host
    /// application or a co-tenant grows): application usage rises,
    /// availability falls. Clamped at capacity; returns the bytes
    /// actually revoked.
    pub fn revoke(&self, node: usize, bytes: u64) -> u64 {
        let mut n = self.inner.nodes[node].lock();
        let actual = bytes.min(n.capacity - n.app_used);
        n.app_used += actual;
        drop(n);
        self.touch();
        actual
    }

    /// Returns previously revoked memory: application usage falls by up
    /// to `bytes` (saturating at zero).
    pub fn restore(&self, node: usize, bytes: u64) {
        let mut n = self.inner.nodes[node].lock();
        n.app_used = n.app_used.saturating_sub(bytes);
        drop(n);
        self.touch();
    }

    /// Current DRAM-time multiplier for `node`: 1.0 while everything
    /// fits; when `app_used + reserved` exceeds capacity, the overflowed
    /// fraction of buffer traffic runs at swap speed:
    ///
    /// `factor = 1 + paged_fraction × (swap_slowdown − 1)`
    ///
    /// where `paged_fraction = overflow / reserved`.
    #[must_use]
    pub fn pressure_factor(&self, node: usize) -> f64 {
        let n = self.inner.nodes[node].lock();
        if n.reserved == 0 {
            return 1.0;
        }
        let used = n.app_used + n.reserved;
        if used <= n.capacity {
            return 1.0;
        }
        let overflow = used - n.capacity;
        let paged = (overflow as f64 / n.reserved as f64).min(1.0);
        1.0 + paged * (self.inner.params.swap_slowdown - 1.0)
    }

    /// Pressure factors for all nodes, in node order — the shape
    /// [`mccio_sim::CostModel::shuffle_phase`] consumes.
    #[must_use]
    pub fn pressure_factors(&self) -> Vec<f64> {
        (0..self.n_nodes())
            .map(|n| self.pressure_factor(n))
            .collect()
    }

    /// Bytes currently reserved on `node`.
    #[must_use]
    pub fn reserved(&self, node: usize) -> u64 {
        self.inner.nodes[node].lock().reserved
    }

    /// `node`'s aggregation-memory ceiling: capacity minus what the
    /// application and OS currently hold (`capacity − app_used`).
    /// Reservations up to the ceiling fit in DRAM; beyond it the node
    /// pages ([`MemoryModel::pressure_factor`] rises above 1.0). Fault
    /// revocations/restorations move the ceiling mid-run, which is why
    /// occupancy timelines record it per event rather than once.
    #[must_use]
    pub fn ceiling(&self, node: usize) -> u64 {
        let n = self.inner.nodes[node].lock();
        n.capacity.saturating_sub(n.app_used)
    }

    /// High-water mark of aggregation memory on `node` — the paper's
    /// per-aggregator "memory consumption" metric.
    #[must_use]
    pub fn peak_reserved(&self, node: usize) -> u64 {
        self.inner.nodes[node].lock().peak_reserved
    }

    /// Updates `node`'s application memory usage (the simulation's way
    /// of modelling application phases that grow or shrink between
    /// collective operations — the availability the *next* plan sees).
    ///
    /// # Panics
    /// Panics if `bytes` exceeds the node's capacity.
    pub fn set_app_used(&self, node: usize, bytes: u64) {
        let mut n = self.inner.nodes[node].lock();
        assert!(
            bytes <= n.capacity,
            "app usage {bytes} exceeds capacity {} on node {node}",
            n.capacity
        );
        n.app_used = bytes;
        drop(n);
        self.touch();
    }

    /// Current application memory usage on `node`.
    #[must_use]
    pub fn app_used(&self, node: usize) -> u64 {
        self.inner.nodes[node].lock().app_used
    }

    /// Node capacity in bytes.
    #[must_use]
    pub fn capacity(&self, node: usize) -> u64 {
        self.inner.nodes[node].lock().capacity
    }

    /// Resets every node's high-water mark (between experiment runs).
    pub fn reset_peaks(&self) {
        for n in &self.inner.nodes {
            let mut n = n.lock();
            n.peak_reserved = n.reserved;
        }
        // Peaks feed `peak_statistics`; its memo must not outlive them.
        self.touch();
    }

    /// Summary of peak aggregation memory across nodes that aggregated
    /// anything — mean, stddev and CV quantify the paper's "variance
    /// among processes".
    ///
    /// Memoized on the model's version: repeat calls between mutations
    /// (every rank's operation epilogue reads this) reuse one sweep
    /// instead of locking every node again.
    #[must_use]
    pub fn peak_statistics(&self) -> Welford {
        let v0 = self.inner.version.load(Ordering::Relaxed);
        if let Some((v, w)) = *self.inner.peak_memo.lock() {
            if v == v0 {
                return w;
            }
        }
        let mut w = Welford::new();
        for n in &self.inner.nodes {
            let peak = n.lock().peak_reserved;
            if peak > 0 {
                w.push(peak as f64);
            }
        }
        // Only cache a snapshot no mutation raced with: if the version
        // moved mid-sweep the result may be torn, and caching it under
        // `v1` would serve the torn view to callers at that version.
        let v1 = self.inner.version.load(Ordering::Relaxed);
        if v0 == v1 {
            *self.inner.peak_memo.lock() = Some((v0, w));
        }
        w
    }

    /// Summary of available memory across all nodes (used by the tuner to
    /// pick `Mem_min` and by tests to verify the sampled variance).
    #[must_use]
    pub fn availability_statistics(&self) -> Welford {
        let mut w = Welford::new();
        for i in 0..self.n_nodes() {
            w.push(self.available(i) as f64);
        }
        w
    }

    fn release(&self, node: usize, bytes: u64) {
        let mut n = self.inner.nodes[node].lock();
        assert!(
            n.reserved >= bytes,
            "release of {bytes} B exceeds {} B reserved on node {node}",
            n.reserved
        );
        n.reserved -= bytes;
        drop(n);
        self.touch();
    }
}

/// RAII guard for an aggregation-buffer reservation.
#[derive(Debug)]
pub struct Reservation {
    model: MemoryModel,
    node: usize,
    bytes: u64,
}

impl Reservation {
    /// The node the reservation lives on.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// Reserved size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.model.release(self.node, self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccio_sim::topology::test_cluster;
    use mccio_sim::units::{GIB, MIB};

    #[test]
    fn pristine_node_has_capacity_minus_reserves() {
        let cluster = test_cluster(2, 2); // 256 MiB nodes
        let m = MemoryModel::pristine(&cluster);
        let avail = m.available(0);
        // capacity − 5 % OS share ≈ 243 MiB.
        assert!(avail > 240 * MIB && avail < 248 * MIB, "{avail}");
    }

    #[test]
    fn reserve_reduces_availability_and_drop_restores_it() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::pristine(&cluster);
        let before = m.available(0);
        {
            let _r = m.reserve(0, 64 * MIB);
            assert_eq!(m.available(0), before - 64 * MIB);
            assert_eq!(m.reserved(0), 64 * MIB);
        }
        assert_eq!(m.available(0), before);
        assert_eq!(m.reserved(0), 0);
        assert_eq!(m.peak_reserved(0), 64 * MIB);
    }

    #[test]
    fn fitting_reservation_has_no_pressure() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::pristine(&cluster);
        let _r = m.reserve(0, 32 * MIB);
        assert_eq!(m.pressure_factor(0), 1.0);
    }

    #[test]
    fn oversubscription_thrashes_proportionally() {
        let cluster = test_cluster(1, 2); // 256 MiB capacity
                                          // Application already uses 200 MiB.
        let m = MemoryModel::build(&cluster, |_, _| 200 * MIB, MemParams::default());
        // Reserve 112 MiB: 56 MiB overflow = half the buffer pages.
        let _r = m.reserve(0, 112 * MIB);
        let f = m.pressure_factor(0);
        let expected = 1.0 + 0.5 * 49.0;
        assert!(
            (f - expected).abs() < 0.01,
            "factor {f}, expected {expected}"
        );
    }

    #[test]
    fn pressure_caps_at_full_swap_speed() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::build(&cluster, |_, cap| cap, MemParams::default());
        let _r = m.reserve(0, GIB);
        assert!((m.pressure_factor(0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn no_reservation_means_no_pressure_even_when_full() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::build(&cluster, |_, cap| cap, MemParams::default());
        assert_eq!(m.pressure_factor(0), 1.0);
        assert_eq!(m.available(0), 0);
    }

    #[test]
    fn variance_sampling_is_deterministic_and_roughly_normal() {
        let cluster = test_cluster(256, 2);
        let a = MemoryModel::with_available_variance(&cluster, 128 * MIB, 32 * MIB, 7);
        let b = MemoryModel::with_available_variance(&cluster, 128 * MIB, 32 * MIB, 7);
        for node in 0..256 {
            assert_eq!(a.available(node), b.available(node));
        }
        let stats = a.availability_statistics();
        assert!(
            (stats.mean() - 128.0 * MIB as f64).abs() < 8.0 * MIB as f64,
            "mean {}",
            stats.mean() / MIB as f64
        );
        assert!(
            (stats.stddev() - 32.0 * MIB as f64).abs() < 8.0 * MIB as f64,
            "stddev {}",
            stats.stddev() / MIB as f64
        );
        let c = MemoryModel::with_available_variance(&cluster, 128 * MIB, 32 * MIB, 8);
        assert_ne!(
            c.available(0),
            a.available(0),
            "different seed, different draw"
        );
    }

    #[test]
    fn peak_statistics_only_count_aggregating_nodes() {
        let cluster = test_cluster(4, 2);
        let m = MemoryModel::pristine(&cluster);
        let _a = m.reserve(1, 10 * MIB);
        let _b = m.reserve(2, 30 * MIB);
        let stats = m.peak_statistics();
        assert_eq!(stats.count(), 2);
        assert!((stats.mean() - 20.0 * MIB as f64).abs() < 1.0);
        m.reset_peaks();
        // Peaks reset to live reservations, still 2 nodes counted.
        assert_eq!(m.peak_statistics().count(), 2);
    }

    #[test]
    fn concurrent_reservations_balance() {
        let cluster = test_cluster(1, 8);
        let m = MemoryModel::pristine(&cluster);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let r = m.reserve(0, MIB);
                        drop(r);
                    }
                });
            }
        });
        assert_eq!(m.reserved(0), 0);
        assert!(m.peak_reserved(0) >= MIB);
    }

    #[test]
    fn ceiling_tracks_app_usage_not_reservations() {
        let cluster = test_cluster(1, 2); // 256 MiB capacity
        let m = MemoryModel::build(&cluster, |_, _| 100 * MIB, MemParams::default());
        assert_eq!(m.ceiling(0), m.capacity(0) - 100 * MIB);
        // Reservations consume availability but not the ceiling.
        let _r = m.reserve(0, 50 * MIB);
        assert_eq!(m.ceiling(0), m.capacity(0) - 100 * MIB);
        // Revocation lowers the ceiling; restoration raises it back.
        m.revoke(0, 20 * MIB);
        assert_eq!(m.ceiling(0), m.capacity(0) - 120 * MIB);
        m.restore(0, 20 * MIB);
        assert_eq!(m.ceiling(0), m.capacity(0) - 100 * MIB);
    }

    #[test]
    fn app_usage_updates_shift_availability() {
        let cluster = test_cluster(2, 2);
        let m = MemoryModel::pristine(&cluster);
        let before = m.available(0);
        m.set_app_used(0, 200 * MIB);
        assert_eq!(m.app_used(0), 200 * MIB);
        assert!(m.available(0) < before);
        assert_eq!(m.available(0), m.capacity(0) - 200 * MIB);
        // Pressure follows the new usage.
        let _r = m.reserve(0, 100 * MIB);
        assert!(m.pressure_factor(0) > 1.0, "200 + 100 > 256 MiB capacity");
    }

    #[test]
    fn try_reserve_refuses_instead_of_paging() {
        let cluster = test_cluster(1, 2); // 256 MiB
        let m = MemoryModel::build(&cluster, |_, _| 200 * MIB, MemParams::default());
        let ok = m.try_reserve(0, 40 * MIB).expect("40 MiB fits in 56 free");
        assert!(
            m.try_reserve(0, 40 * MIB).is_none(),
            "second 40 MiB does not"
        );
        assert_eq!(m.reserved(0), 40 * MIB);
        drop(ok);
        assert_eq!(m.reserved(0), 0);
    }

    #[test]
    fn revocation_shrinks_availability_and_restore_returns_it() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::build(&cluster, |_, _| 100 * MIB, MemParams::default());
        let before = m.available(0);
        assert_eq!(m.revoke(0, 50 * MIB), 50 * MIB);
        assert_eq!(m.available(0), before - 50 * MIB);
        assert_eq!(m.app_used(0), 150 * MIB);
        m.restore(0, 50 * MIB);
        assert_eq!(m.available(0), before);
        // Revoking more than remains clamps at capacity.
        let huge = m.revoke(0, 1 << 40);
        assert_eq!(m.app_used(0), m.capacity(0));
        assert_eq!(huge, m.capacity(0) - 100 * MIB);
    }

    #[test]
    fn revocation_can_defeat_try_reserve_mid_run() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::build(&cluster, |_, _| 100 * MIB, MemParams::default());
        assert!(m.try_reserve(0, 100 * MIB).is_some());
        m.revoke(0, 100 * MIB);
        assert!(
            m.try_reserve(0, 100 * MIB).is_none(),
            "the revocation consumed what the reservation needed"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn app_usage_beyond_capacity_rejected() {
        let cluster = test_cluster(1, 1);
        let m = MemoryModel::pristine(&cluster);
        m.set_app_used(0, 1 << 40);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn double_release_is_a_bug() {
        let cluster = test_cluster(1, 2);
        let m = MemoryModel::pristine(&cluster);
        let r = m.reserve(0, MIB);
        m.release(0, MIB);
        drop(r); // panics: releases more than reserved
    }
}
