//! Trace analytics: critical-path extraction, memory-pressure
//! timelines, and A/B run diffing.
//!
//! The raw trace (spans, instants, counters) answers *what happened*;
//! this module answers the questions the paper asks of it:
//!
//! * **Critical path** — the engine prices every round at the world
//!   root, so the longest virtual-time chain through an operation is
//!   the op span itself, tiled by its rounds' phase terms (sync →
//!   shuffle → storage → assembly → backoff, in pricing order) plus
//!   whatever the rounds do not cover (prologue, inter-round gaps,
//!   epilogue). [`CriticalPath`] reconstructs that tiling from the
//!   round spans' attributes, attributes every virtual second to a
//!   [`Phase`], and names the straggler rank that set each
//!   max-over-ranks phase term.
//! * **Memory pressure** — paired `mem.reserve` / `mem.release`
//!   instants (plus `fault.mem.revoke` / `fault.mem.restore`) replay
//!   into exact per-node occupancy step functions ([`MemTimeline`]),
//!   not just high-water marks, with overflow windows flagged wherever
//!   occupancy exceeds the node's ceiling.
//! * **A/B diffing** — [`TraceAnalysis::diff`] compares two runs'
//!   attribution tables and counters with per-phase deltas
//!   ([`RunDiff`]); a run diffed against itself is exactly zero.
//!
//! Input is either a live [`ObsSink`] ([`TraceAnalysis::of_sink`]) or a
//! replayed artifact: [`TraceEvent::from_jsonl`] round-trips the JSONL
//! exporter bit-exactly (f64s are printed shortest-roundtrip), while
//! [`TraceEvent::from_chrome`] accepts the Chrome artifact's microsecond
//! timestamps (lossy at the 1e-9 s level, fine for inspection).

use std::collections::BTreeMap;

use mccio_sim::hostprof::HostProfile;
use mccio_sim::time::{VDuration, VTime};

use crate::causal::CausalAnalysis;
use crate::json::{self, Value};
use crate::metrics::Histogram;
use crate::sink::ObsSink;
use crate::span::{AttrValue, Event, EventKind, ENGINE_TRACK, PHASE_NAMES};
use crate::stream::StreamAgg;

/// Tolerance for tiling checks: segment sums are f64 accumulations of
/// attribute values, so they match the priced durations to rounding.
pub const TILING_EPS: f64 = 1e-9;

/// An owned attribute value — the replayable mirror of [`AttrValue`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttrVal {
    /// An unsigned count or byte size.
    U64(u64),
    /// A floating-point quantity (seconds, factors).
    F64(f64),
    /// A label (direction, strategy name, event taxonomy).
    Str(String),
}

/// An owned observability event: the replayable mirror of [`Event`],
/// buildable from a live sink or parsed back from an exported artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name within the taxonomy (`"op"`, `"round"`, …).
    pub name: String,
    /// Category (`"engine"`, `"mem"`, `"fault"`, …).
    pub cat: String,
    /// The track the event renders on: a rank number or
    /// [`ENGINE_TRACK`].
    pub track: u32,
    /// The mark this event places on the track.
    pub kind: EventKind,
    /// Structured attributes.
    pub attrs: Vec<(String, AttrVal)>,
    /// Order key. Live events keep their emission sequence; replayed
    /// events use their line/array position, which the exporters sort
    /// parent-before-child, so ordering semantics survive the round
    /// trip.
    pub seq: u64,
}

impl TraceEvent {
    /// Converts a live sink event.
    #[must_use]
    pub fn from_live(e: &Event) -> TraceEvent {
        TraceEvent {
            name: e.name.to_string(),
            cat: e.cat.to_string(),
            track: e.track,
            kind: e.kind,
            attrs: e
                .attrs
                .iter()
                .map(|(k, v)| {
                    let v = match v {
                        AttrValue::U64(x) => AttrVal::U64(*x),
                        AttrValue::F64(x) => AttrVal::F64(*x),
                        AttrValue::Str(s) => AttrVal::Str((*s).to_string()),
                    };
                    ((*k).to_string(), v)
                })
                .collect(),
            seq: e.seq,
        }
    }

    /// Looks up an attribute by key.
    #[must_use]
    pub fn attr(&self, key: &str) -> Option<&AttrVal> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An attribute as u64, if present and integral.
    #[must_use]
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrVal::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// An attribute as f64 (also accepts u64), if present.
    #[must_use]
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key) {
            Some(AttrVal::F64(v)) => Some(*v),
            Some(AttrVal::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// An attribute as a string, if present and of that type.
    #[must_use]
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrVal::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Virtual end of the event (start + duration for spans, the mark
    /// itself otherwise).
    #[must_use]
    pub fn end(&self) -> VTime {
        match self.kind {
            EventKind::Span { start, dur } => start + dur,
            EventKind::Instant { at } | EventKind::Counter { at, .. } => at,
        }
    }

    /// Replays a JSONL artifact (the [`crate::export::jsonl`] format)
    /// back into events. JSONL prints f64s shortest-roundtrip, so every
    /// virtual time comes back bit-identical to the live sink's.
    ///
    /// # Errors
    /// Describes the first malformed line.
    pub fn from_jsonl(doc: &str) -> Result<Vec<TraceEvent>, String> {
        let mut out = Vec::new();
        for (i, line) in doc.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let field = |k: &str| {
                v.get(k)
                    .cloned()
                    .ok_or(format!("line {} missing {k:?}", i + 1))
            };
            let num = |k: &str| {
                field(k)?
                    .as_f64()
                    .ok_or(format!("line {}: {k:?} not a number", i + 1))
            };
            let kind = match field("kind")?.as_str() {
                Some("span") => EventKind::Span {
                    start: VTime::from_secs(num("start_s")?),
                    dur: VDuration::from_secs(num("dur_s")?),
                },
                Some("instant") => EventKind::Instant {
                    at: VTime::from_secs(num("at_s")?),
                },
                Some("counter") => EventKind::Counter {
                    at: VTime::from_secs(num("at_s")?),
                    value: num("value")?,
                },
                other => return Err(format!("line {}: bad kind {other:?}", i + 1)),
            };
            out.push(TraceEvent {
                name: field("name")?
                    .as_str()
                    .ok_or(format!("line {}: name not a string", i + 1))?
                    .to_string(),
                cat: field("cat")?.as_str().unwrap_or("").to_string(),
                track: num("track")? as u32,
                kind,
                attrs: parse_attrs(v.get("attrs")),
                seq: out.len() as u64,
            });
        }
        Ok(out)
    }

    /// Replays a Chrome `trace_event` artifact back into events.
    /// Timestamps are microseconds printed at fixed precision, so
    /// virtual times round-trip to ~1e-9 s, not to the bit — use JSONL
    /// when exactness matters.
    ///
    /// # Errors
    /// Describes the first malformed record.
    pub fn from_chrome(doc: &str) -> Result<Vec<TraceEvent>, String> {
        const US: f64 = 1e6;
        let parsed = json::parse(doc)?;
        let records = parsed.as_arr().ok_or("top level must be a JSON array")?;
        let mut out = Vec::new();
        for (i, r) in records.iter().enumerate() {
            let ph = r
                .get("ph")
                .and_then(Value::as_str)
                .ok_or(format!("record {i} missing \"ph\""))?;
            if ph == "M" {
                continue;
            }
            let num = |k: &str| {
                r.get(k)
                    .and_then(Value::as_f64)
                    .ok_or(format!("record {i} missing numeric {k:?}"))
            };
            let kind = match ph {
                "X" => EventKind::Span {
                    start: VTime::from_secs(num("ts")? / US),
                    dur: VDuration::from_secs(num("dur")? / US),
                },
                "i" => EventKind::Instant {
                    at: VTime::from_secs(num("ts")? / US),
                },
                "C" => EventKind::Counter {
                    at: VTime::from_secs(num("ts")? / US),
                    value: r
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Value::as_f64)
                        .ok_or(format!("counter record {i} missing args.value"))?,
                },
                // Flow events ("s" start / "f" finish) annotate message
                // causality between spans; they carry no span of their
                // own and are skipped on replay (like "M" metadata).
                "s" | "f" => continue,
                other => return Err(format!("record {i}: unknown ph {other:?}")),
            };
            out.push(TraceEvent {
                name: r
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or(format!("record {i} missing \"name\""))?
                    .to_string(),
                cat: r
                    .get("cat")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                track: num("tid")? as u32,
                kind,
                attrs: if matches!(kind, EventKind::Counter { .. }) {
                    Vec::new()
                } else {
                    parse_attrs(r.get("args"))
                },
                seq: out.len() as u64,
            });
        }
        Ok(out)
    }
}

/// Parses an exported `attrs`/`args` object back into attribute pairs.
/// Integral numbers come back as [`AttrVal::U64`] (the exporters print
/// u64s without a decimal point); everything else stays f64.
fn parse_attrs(v: Option<&Value>) -> Vec<(String, AttrVal)> {
    let Some(obj) = v.and_then(Value::as_obj) else {
        return Vec::new();
    };
    obj.iter()
        .map(|(k, v)| {
            let val = match v {
                Value::Str(s) => AttrVal::Str(s.clone()),
                Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                    AttrVal::U64(*n as u64)
                }
                Value::Num(n) => AttrVal::F64(*n),
                other => AttrVal::Str(format!("{other:?}")),
            };
            (k.clone(), val)
        })
        .collect()
}

/// Where a slice of critical-path time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Round control synchronization.
    Sync,
    /// Shuffle (client → aggregator data exchange).
    Shuffle,
    /// Storage phase (aggregator ↔ file system).
    Storage,
    /// Aggregation-buffer assembly copies.
    Assembly,
    /// Retry backoff the round waited on its slowest rank.
    Backoff,
    /// Before the first round: clock sync, fault application, buffer
    /// reservation (including collective reservation retries).
    Prologue,
    /// Virtual time between consecutive rounds not claimed by either
    /// (zero on healthy runs; escalation pauses land here).
    Gap,
    /// After the last round: release barriers and report assembly.
    Epilogue,
}

impl Phase {
    /// Every phase, round phases first in pricing order.
    pub const ALL: [Phase; 8] = [
        Phase::Sync,
        Phase::Shuffle,
        Phase::Storage,
        Phase::Assembly,
        Phase::Backoff,
        Phase::Prologue,
        Phase::Gap,
        Phase::Epilogue,
    ];

    /// The phase's lowercase display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sync => "sync",
            Phase::Shuffle => "shuffle",
            Phase::Storage => "storage",
            Phase::Assembly => "assembly",
            Phase::Backoff => "backoff",
            Phase::Prologue => "prologue",
            Phase::Gap => "gap",
            Phase::Epilogue => "epilogue",
        }
    }

    /// The round phase with this name (`"sync"` … `"backoff"`), if any.
    /// Round phases lead [`Phase::ALL`] in [`PHASE_NAMES`] order.
    #[must_use]
    pub fn round_phase(name: &str) -> Option<Phase> {
        PHASE_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| Phase::ALL[i])
    }
}

/// One contiguous slice of an operation's critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// What the time was spent on.
    pub phase: Phase,
    /// Virtual start of the slice.
    pub start: VTime,
    /// Virtual duration of the slice.
    pub dur: VDuration,
    /// Index of the round this slice belongs to (round phases only).
    pub round: Option<usize>,
    /// The rank that set this max-over-ranks phase term — the round's
    /// straggler. Named for storage (the busiest aggregator), assembly,
    /// and backoff; sync and shuffle are priced globally.
    pub straggler: Option<u32>,
}

/// Seconds of critical-path time attributed to each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Attribution {
    /// Control-synchronization seconds.
    pub sync: f64,
    /// Shuffle seconds.
    pub shuffle: f64,
    /// Storage seconds.
    pub storage: f64,
    /// Assembly seconds.
    pub assembly: f64,
    /// Retry-backoff seconds.
    pub backoff: f64,
    /// Prologue seconds.
    pub prologue: f64,
    /// Inter-round gap seconds.
    pub gap: f64,
    /// Epilogue seconds.
    pub epilogue: f64,
}

impl Attribution {
    /// Seconds attributed to `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Sync => self.sync,
            Phase::Shuffle => self.shuffle,
            Phase::Storage => self.storage,
            Phase::Assembly => self.assembly,
            Phase::Backoff => self.backoff,
            Phase::Prologue => self.prologue,
            Phase::Gap => self.gap,
            Phase::Epilogue => self.epilogue,
        }
    }

    fn add(&mut self, phase: Phase, secs: f64) {
        match phase {
            Phase::Sync => self.sync += secs,
            Phase::Shuffle => self.shuffle += secs,
            Phase::Storage => self.storage += secs,
            Phase::Assembly => self.assembly += secs,
            Phase::Backoff => self.backoff += secs,
            Phase::Prologue => self.prologue += secs,
            Phase::Gap => self.gap += secs,
            Phase::Epilogue => self.epilogue += secs,
        }
    }

    /// Sum over every phase.
    #[must_use]
    pub fn total(&self) -> f64 {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// The phase holding the most time.
    #[must_use]
    pub fn dominant(&self) -> Phase {
        let mut best = Phase::Sync;
        for &p in &Phase::ALL {
            if self.get(p) > self.get(best) {
                best = p;
            }
        }
        best
    }
}

/// The critical path of one collective operation.
///
/// The engine advances every rank's clock by the same root-priced
/// duration each round, so the op span *is* the longest virtual-time
/// chain; what this adds is the tiling — which phase of which round
/// each slice belongs to, and who the straggler was.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// `"write"` or `"read"`.
    pub dir: String,
    /// Virtual start of the operation (the op span's start).
    pub start: VTime,
    /// Total critical-path duration — the op span's priced virtual
    /// duration, verbatim (bit-identical, never re-derived from the
    /// segment sum).
    pub total: VDuration,
    /// The path, tiled in virtual-time order.
    pub segments: Vec<Segment>,
    /// Per-phase attribution (sums of the segments).
    pub attribution: Attribution,
    /// Rounds on the path.
    pub rounds: usize,
    /// `attribution.total() - total.as_secs()` — how far the f64
    /// segment sum drifts from the priced duration. Bounded by
    /// [`TILING_EPS`] × rounds on any trace the engine emitted.
    pub tiling_error: f64,
}

impl CriticalPath {
    /// The rank named as straggler most often across this path's
    /// storage/assembly/backoff segments, with its count.
    #[must_use]
    pub fn top_straggler(&self) -> Option<(u32, usize)> {
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for s in &self.segments {
            if let Some(r) = s.straggler {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by_key(|&(r, n)| (n, std::cmp::Reverse(r)))
    }
}

/// One step of a node's occupancy timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPoint {
    /// Virtual time of the step.
    pub at: VTime,
    /// Aggregation-buffer bytes held from this instant on.
    pub occupancy: u64,
    /// The node's ceiling (capacity minus application usage) from this
    /// instant on.
    pub ceiling: u64,
}

/// A node's exact aggregation-buffer occupancy over virtual time,
/// replayed from paired `mem.reserve`/`mem.release` instants, with the
/// ceiling stepped by `fault.mem.revoke`/`fault.mem.restore`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemTimeline {
    /// The node this timeline describes.
    pub node: usize,
    /// Occupancy/ceiling steps in virtual-time order.
    pub points: Vec<MemPoint>,
    /// Highest occupancy reached.
    pub peak: u64,
    /// Total bytes reserved across the run.
    pub reserved: u64,
    /// Total bytes released across the run.
    pub released: u64,
    /// Occupancy after the last event — zero iff every reserve was
    /// released.
    pub final_occupancy: u64,
    /// Windows `[start, end)` where occupancy exceeded the ceiling
    /// (`end == start of the step that cleared it`; an unclosed window
    /// ends at the last event).
    pub overflow: Vec<(VTime, VTime)>,
}

impl MemTimeline {
    /// True when occupancy never exceeded the ceiling.
    #[must_use]
    pub fn within_ceiling(&self) -> bool {
        self.overflow.is_empty()
    }
}

/// Everything the analyzer extracts from one run's trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAnalysis {
    /// Critical paths, one per collective operation, in virtual-time
    /// order (a paper run is a write op followed by a read op).
    pub ops: Vec<CriticalPath>,
    /// Per-node occupancy timelines, in node order (only nodes that
    /// reserved anything appear).
    pub memory: Vec<MemTimeline>,
    /// Counter snapshot, when analyzing a live sink (replayed artifacts
    /// carry events only).
    pub counters: BTreeMap<String, u64>,
    /// Gauge snapshot, when analyzing a live sink — high-water marks and
    /// latest readings (pool live bytes, executor stack reuse, …).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshot, when analyzing a live sink (per-node memory
    /// peaks, round client counts, …).
    pub histograms: BTreeMap<String, Histogram>,
    /// The streaming aggregate, when the analyzed sink folds through
    /// one (`ObsSink::streaming`); `None` on buffered sinks and
    /// replayed artifacts.
    pub streaming: Option<StreamAgg>,
    /// Host-wall profile of the run, when the caller attached one via
    /// [`TraceAnalysis::with_host_profile`]. Host times are
    /// nondeterministic observability data, never part of bit-identity
    /// checks.
    pub host: Option<HostProfile>,
    /// Per-op causal analyses (blame chains, wait-vs-work, what-if
    /// projections), when the analyzed sink had causal tracing armed
    /// ([`ObsSink::with_causal`]); `None` otherwise.
    pub causal: Option<CausalAnalysis>,
}

impl TraceAnalysis {
    /// Analyzes a live sink: events plus the metrics registry's
    /// counters. The sink is read, not drained.
    ///
    /// # Errors
    /// Propagates [`TraceAnalysis::from_events`] errors.
    pub fn of_sink(sink: &ObsSink) -> Result<TraceAnalysis, String> {
        // Borrow the buffer and sort references: the O(events) copy of
        // every event (attribute vectors included) that `events()`
        // would make is avoided; only the owned TraceEvent mirror is
        // built.
        let events: Vec<TraceEvent> = sink.with_events(|live| {
            let mut refs: Vec<&Event> = live.iter().collect();
            refs.sort_by(|a, b| {
                (a.track, a.kind.at().as_secs(), a.seq)
                    .partial_cmp(&(b.track, b.kind.at().as_secs(), b.seq))
                    .expect("virtual times are finite")
            });
            refs.into_iter().map(TraceEvent::from_live).collect()
        });
        let mut analysis = TraceAnalysis::from_events(&events)?;
        let metrics = sink.metrics();
        analysis.counters = metrics.counter_map();
        analysis.gauges = metrics.gauge_map();
        analysis.histograms = metrics.histogram_map();
        analysis.streaming = sink.stream_stats();
        // Chains and critical paths are both recorded in op order, so
        // the causal layer pairs them positionally (bit-checked inside
        // `from_chains`).
        let chains = sink.causal_chains();
        if !chains.is_empty() {
            analysis.causal = Some(CausalAnalysis::from_chains(&chains, &analysis.ops));
        }
        Ok(analysis)
    }

    /// Attaches a host-wall profile (with the run's total host wall and
    /// virtual seconds) for the report's virtual-vs-host section.
    #[must_use]
    pub fn with_host_profile(mut self, profile: HostProfile) -> TraceAnalysis {
        self.host = Some(profile);
        self
    }

    /// Analyzes a replayed (or pre-converted) event stream.
    ///
    /// # Errors
    /// Returns a description when the trace is structurally broken —
    /// a round span outside any op span, or a round whose phase terms
    /// do not tile its duration.
    pub fn from_events(events: &[TraceEvent]) -> Result<TraceAnalysis, String> {
        let mut ops: Vec<&TraceEvent> = Vec::new();
        let mut rounds: Vec<&TraceEvent> = Vec::new();
        for e in events {
            if e.track == ENGINE_TRACK {
                match (e.name.as_str(), &e.kind) {
                    ("op", EventKind::Span { .. }) => ops.push(e),
                    ("round", EventKind::Span { .. }) => rounds.push(e),
                    _ => {}
                }
            }
        }
        let by_time = |a: &&TraceEvent, b: &&TraceEvent| {
            (a.kind.at().as_secs(), a.seq)
                .partial_cmp(&(b.kind.at().as_secs(), b.seq))
                .expect("virtual times are finite")
        };
        ops.sort_by(by_time);
        rounds.sort_by(by_time);

        let mut paths = Vec::with_capacity(ops.len());
        let mut used = vec![false; rounds.len()];
        for op in &ops {
            let (start, dur) = match op.kind {
                EventKind::Span { start, dur } => (start, dur),
                _ => unreachable!("filtered to spans"),
            };
            let end = start + dur;
            let mut mine: Vec<&TraceEvent> = Vec::new();
            for (r, claimed) in rounds.iter().zip(used.iter_mut()) {
                if *claimed {
                    continue;
                }
                let contained = r.kind.at().as_secs() >= start.as_secs() - TILING_EPS
                    && r.end().as_secs() <= end.as_secs() + TILING_EPS;
                if contained {
                    *claimed = true;
                    mine.push(r);
                }
            }
            paths.push(critical_path(op, start, dur, &mine)?);
        }
        if let Some(pos) = used.iter().position(|&u| !u) {
            return Err(format!(
                "round span at t={} lies outside every op span",
                rounds[pos].kind.at()
            ));
        }
        Ok(TraceAnalysis {
            ops: paths,
            memory: mem_timelines(events),
            ..TraceAnalysis::default()
        })
    }

    /// Structured comparison of two runs: per-phase attribution deltas
    /// (summed across each run's ops) and counter deltas.
    #[must_use]
    pub fn diff(&self, other: &TraceAnalysis) -> RunDiff {
        let sum = |a: &TraceAnalysis| {
            let mut acc = Attribution::default();
            for op in &a.ops {
                for &p in &Phase::ALL {
                    acc.add(p, op.attribution.get(p));
                }
            }
            acc
        };
        let (a, b) = (sum(self), sum(other));
        let phases = Phase::ALL
            .iter()
            .map(|&p| PhaseDelta {
                phase: p,
                a_secs: a.get(p),
                b_secs: b.get(p),
            })
            .collect();
        let mut names: Vec<&String> = self.counters.keys().collect();
        for k in other.counters.keys() {
            if !self.counters.contains_key(k) {
                names.push(k);
            }
        }
        names.sort();
        let counters = names
            .into_iter()
            .map(|k| CounterDelta {
                name: k.clone(),
                a: self.counters.get(k).copied().unwrap_or(0),
                b: other.counters.get(k).copied().unwrap_or(0),
            })
            .collect();
        RunDiff {
            ops_a: self.ops.len(),
            ops_b: other.ops.len(),
            phases,
            counters,
        }
    }
}

/// One phase's attribution in two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseDelta {
    /// The phase compared.
    pub phase: Phase,
    /// Seconds in run A.
    pub a_secs: f64,
    /// Seconds in run B.
    pub b_secs: f64,
}

impl PhaseDelta {
    /// `b - a` seconds.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.b_secs - self.a_secs
    }
}

/// One counter's value in two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Counter name.
    pub name: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
}

impl CounterDelta {
    /// `b - a`.
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.b as i64 - self.a as i64
    }
}

/// A structured A/B comparison of two analyzed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// Op count in run A.
    pub ops_a: usize,
    /// Op count in run B.
    pub ops_b: usize,
    /// Per-phase attribution deltas (summed across ops).
    pub phases: Vec<PhaseDelta>,
    /// Counter deltas, name order, union of both runs' counters.
    pub counters: Vec<CounterDelta>,
}

impl RunDiff {
    /// True when every phase delta is within `eps` seconds and every
    /// counter delta is zero — what a run diffed against itself yields.
    #[must_use]
    pub fn is_zero(&self, eps: f64) -> bool {
        self.ops_a == self.ops_b
            && self.phases.iter().all(|p| p.delta().abs() <= eps)
            && self.counters.iter().all(|c| c.delta() == 0)
    }

    /// A fixed-width text rendering of the comparison.
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ops: a={} b={}", self.ops_a, self.ops_b);
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>14} {:>14}",
            "phase", "a_secs", "b_secs", "delta"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<10} {:>14.6} {:>14.6} {:>+14.6}",
                p.phase.name(),
                p.a_secs,
                p.b_secs,
                p.delta()
            );
        }
        let changed: Vec<&CounterDelta> = self.counters.iter().filter(|c| c.delta() != 0).collect();
        if changed.is_empty() {
            let _ = writeln!(out, "counters: no deltas");
        } else {
            let _ = writeln!(
                out,
                "{:<36} {:>14} {:>14} {:>10}",
                "counter", "a", "b", "delta"
            );
            for c in changed {
                let _ = writeln!(
                    out,
                    "{:<36} {:>14} {:>14} {:>+10}",
                    c.name,
                    c.a,
                    c.b,
                    c.delta()
                );
            }
        }
        out
    }
}

/// Tiles one op span with its rounds' phase terms.
fn critical_path(
    op: &TraceEvent,
    start: VTime,
    dur: VDuration,
    rounds: &[&TraceEvent],
) -> Result<CriticalPath, String> {
    let end = start + dur;
    let mut segments = Vec::new();
    let mut attribution = Attribution::default();
    let mut push =
        |phase: Phase, at: VTime, secs: f64, round: Option<usize>, straggler: Option<u32>| {
            if secs > 0.0 {
                segments.push(Segment {
                    phase,
                    start: at,
                    dur: VDuration::from_secs(secs),
                    round,
                    straggler,
                });
            }
            attribution.add(phase, secs);
        };
    let mut cursor = start;
    for (i, r) in rounds.iter().enumerate() {
        let r_start = r.kind.at();
        let lead = r_start.as_secs() - cursor.as_secs();
        if lead > TILING_EPS {
            let phase = if i == 0 { Phase::Prologue } else { Phase::Gap };
            push(phase, cursor, lead, None, None);
        }
        let mut t = r_start;
        for (name, phase) in [
            ("sync_secs", Phase::Sync),
            ("shuffle_secs", Phase::Shuffle),
            ("storage_secs", Phase::Storage),
            ("assembly_secs", Phase::Assembly),
            ("backoff_secs", Phase::Backoff),
        ] {
            let secs = r.attr_f64(name).unwrap_or(0.0);
            let straggler = match phase {
                Phase::Storage => r.attr_u64("storage_rank"),
                Phase::Assembly => r.attr_u64("assembly_rank"),
                Phase::Backoff => r.attr_u64("backoff_rank"),
                _ => None,
            }
            .map(|v| v as u32)
            .filter(|_| secs > 0.0);
            push(phase, t, secs, Some(i), straggler);
            t += VDuration::from_secs(secs);
        }
        let round_end = r.end();
        if (t.as_secs() - round_end.as_secs()).abs() > TILING_EPS * 10.0 {
            return Err(format!(
                "round {i} phase terms sum to {} but the span ends at {} (op {})",
                t,
                round_end,
                op.attr_str("dir").unwrap_or("?"),
            ));
        }
        cursor = round_end;
    }
    let tail = end.as_secs() - cursor.as_secs();
    if tail > TILING_EPS {
        let phase = if rounds.is_empty() {
            Phase::Prologue
        } else {
            Phase::Epilogue
        };
        push(phase, cursor, tail, None, None);
    }
    let tiling_error = attribution.total() - dur.as_secs();
    Ok(CriticalPath {
        dir: op.attr_str("dir").unwrap_or("?").to_string(),
        start,
        total: dur,
        segments,
        attribution,
        rounds: rounds.len(),
        tiling_error,
    })
}

/// Replays `mem.reserve`/`mem.release` and `fault.mem.*` events into
/// per-node occupancy step functions.
fn mem_timelines(events: &[TraceEvent]) -> Vec<MemTimeline> {
    // Per node, chronological (occupancy delta, ceiling observation or
    // delta) — reserve/release carry an exact ceiling reading, fault
    // events step it.
    #[derive(Clone, Copy)]
    enum Ceil {
        Observed(u64),
        Delta(i64),
    }
    let mut per_node: BTreeMap<usize, Vec<(f64, u64, i64, Ceil)>> = BTreeMap::new();
    for e in events {
        let (occ_delta, ceil) = match e.name.as_str() {
            "mem.reserve" => (
                e.attr_u64("bytes").unwrap_or(0) as i64,
                Ceil::Observed(e.attr_u64("ceiling").unwrap_or(0)),
            ),
            "mem.release" => (
                -(e.attr_u64("bytes").unwrap_or(0) as i64),
                Ceil::Observed(e.attr_u64("ceiling").unwrap_or(0)),
            ),
            "fault.mem.revoke" => (0, Ceil::Delta(-(e.attr_u64("bytes").unwrap_or(0) as i64))),
            "fault.mem.restore" => (0, Ceil::Delta(e.attr_u64("bytes").unwrap_or(0) as i64)),
            _ => continue,
        };
        let Some(node) = e.attr_u64("node") else {
            continue;
        };
        per_node.entry(node as usize).or_default().push((
            e.kind.at().as_secs(),
            e.seq,
            occ_delta,
            ceil,
        ));
    }
    per_node
        .into_iter()
        .filter(|(_, evs)| evs.iter().any(|&(_, _, d, _)| d != 0))
        .map(|(node, mut evs)| {
            evs.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
            // Back-fill the initial ceiling from the first exact reading
            // so fault deltas before any reservation still level out.
            let first_obs = evs
                .iter()
                .find_map(|&(_, _, _, c)| match c {
                    Ceil::Observed(v) => Some(v),
                    Ceil::Delta(_) => None,
                })
                .unwrap_or(0);
            let mut pre_delta = 0i64;
            for &(_, _, _, c) in &evs {
                match c {
                    Ceil::Observed(_) => break,
                    Ceil::Delta(d) => pre_delta += d,
                }
            }
            let mut ceiling = (first_obs as i64 - pre_delta).max(0) as u64;
            let mut occupancy = 0u64;
            let mut tl = MemTimeline {
                node,
                points: Vec::with_capacity(evs.len()),
                peak: 0,
                reserved: 0,
                released: 0,
                final_occupancy: 0,
                overflow: Vec::new(),
            };
            let mut over_since: Option<VTime> = None;
            for (at_secs, _, occ_delta, ceil) in evs {
                let at = VTime::from_secs(at_secs);
                if occ_delta > 0 {
                    tl.reserved += occ_delta as u64;
                } else {
                    tl.released += (-occ_delta) as u64;
                }
                occupancy = (occupancy as i64 + occ_delta).max(0) as u64;
                ceiling = match ceil {
                    Ceil::Observed(v) => v,
                    Ceil::Delta(d) => (ceiling as i64 + d).max(0) as u64,
                };
                tl.peak = tl.peak.max(occupancy);
                match (occupancy > ceiling, over_since) {
                    (true, None) => over_since = Some(at),
                    (false, Some(since)) => {
                        tl.overflow.push((since, at));
                        over_since = None;
                    }
                    _ => {}
                }
                tl.points.push(MemPoint {
                    at,
                    occupancy,
                    ceiling,
                });
            }
            if let (Some(since), Some(last)) = (over_since, tl.points.last()) {
                tl.overflow.push((since, last.at));
            }
            tl.final_occupancy = occupancy;
            tl
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::sort_for_export;

    fn ev(
        name: &str,
        track: u32,
        kind: EventKind,
        attrs: Vec<(&str, AttrVal)>,
        seq: u64,
    ) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "t".to_string(),
            track,
            kind,
            attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            seq,
        }
    }

    fn span(start: f64, dur: f64) -> EventKind {
        EventKind::Span {
            start: VTime::from_secs(start),
            dur: VDuration::from_secs(dur),
        }
    }

    fn at(t: f64) -> EventKind {
        EventKind::Instant {
            at: VTime::from_secs(t),
        }
    }

    fn round(start: f64, secs: [f64; 5], straggler: u64, seq: u64) -> TraceEvent {
        let dur: f64 = secs.iter().sum();
        ev(
            "round",
            ENGINE_TRACK,
            span(start, dur),
            vec![
                ("dir", AttrVal::Str("write".into())),
                ("sync_secs", AttrVal::F64(secs[0])),
                ("shuffle_secs", AttrVal::F64(secs[1])),
                ("storage_secs", AttrVal::F64(secs[2])),
                ("assembly_secs", AttrVal::F64(secs[3])),
                ("backoff_secs", AttrVal::F64(secs[4])),
                ("storage_rank", AttrVal::U64(straggler)),
                ("assembly_rank", AttrVal::U64(straggler + 1)),
                ("backoff_rank", AttrVal::U64(straggler + 2)),
            ],
            seq,
        )
    }

    #[test]
    fn critical_path_tiles_op_with_rounds_gaps_and_epilogue() {
        let op = ev(
            "op",
            ENGINE_TRACK,
            span(0.0, 10.0),
            vec![("dir", AttrVal::Str("write".into()))],
            0,
        );
        let events = vec![
            op,
            round(1.0, [0.5, 1.0, 1.5, 0.0, 0.0], 3, 1),
            round(5.0, [0.5, 0.5, 2.0, 1.0, 0.0], 7, 2),
        ];
        let a = TraceAnalysis::from_events(&events).unwrap();
        assert_eq!(a.ops.len(), 1);
        let cp = &a.ops[0];
        assert_eq!(cp.dir, "write");
        assert_eq!(cp.rounds, 2);
        // Total is the op span's duration verbatim.
        assert_eq!(cp.total.as_secs().to_bits(), 10.0f64.to_bits());
        // Prologue [0,1), round1 3s, gap [4,5), round2 4s, epilogue [9,10).
        assert!((cp.attribution.prologue - 1.0).abs() < 1e-12);
        assert!((cp.attribution.gap - 1.0).abs() < 1e-12);
        assert!((cp.attribution.epilogue - 1.0).abs() < 1e-12);
        assert!((cp.attribution.storage - 3.5).abs() < 1e-12);
        assert!(cp.tiling_error.abs() < TILING_EPS);
        assert_eq!(cp.attribution.dominant(), Phase::Storage);
        // Stragglers named only on nonzero storage/assembly/backoff.
        let stragglers: Vec<(Phase, u32)> = cp
            .segments
            .iter()
            .filter_map(|s| s.straggler.map(|r| (s.phase, r)))
            .collect();
        assert_eq!(
            stragglers,
            vec![
                (Phase::Storage, 3),
                (Phase::Storage, 7),
                (Phase::Assembly, 8)
            ]
        );
        assert_eq!(cp.top_straggler(), Some((3, 1)));
        // Segments are contiguous from start to end.
        let mut t = cp.start;
        for s in &cp.segments {
            assert!((s.start.as_secs() - t.as_secs()).abs() < 1e-9);
            t = s.start + s.dur;
        }
        assert!((t.as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn round_outside_any_op_is_an_error() {
        let events = vec![
            ev("op", ENGINE_TRACK, span(0.0, 1.0), vec![], 0),
            round(5.0, [1.0, 0.0, 0.0, 0.0, 0.0], 0, 1),
        ];
        let err = TraceAnalysis::from_events(&events).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn untiled_round_is_an_error() {
        let mut bad = round(0.0, [1.0, 0.0, 0.0, 0.0, 0.0], 0, 1);
        bad.kind = span(0.0, 2.0); // claims 2s, terms sum to 1s
        let events = vec![ev("op", ENGINE_TRACK, span(0.0, 2.0), vec![], 0), bad];
        let err = TraceAnalysis::from_events(&events).unwrap_err();
        assert!(err.contains("phase terms"), "{err}");
    }

    fn mem_ev(name: &str, t: f64, node: u64, bytes: u64, ceiling: u64, seq: u64) -> TraceEvent {
        ev(
            name,
            0,
            at(t),
            vec![
                ("node", AttrVal::U64(node)),
                ("bytes", AttrVal::U64(bytes)),
                ("ceiling", AttrVal::U64(ceiling)),
            ],
            seq,
        )
    }

    #[test]
    fn occupancy_steps_and_balances() {
        let events = vec![
            mem_ev("mem.reserve", 0.0, 0, 100, 150, 0),
            mem_ev("mem.reserve", 1.0, 0, 40, 150, 1),
            mem_ev("mem.release", 2.0, 0, 100, 150, 2),
            mem_ev("mem.release", 2.0, 0, 40, 150, 3),
        ];
        let a = TraceAnalysis::from_events(&events).unwrap();
        assert_eq!(a.memory.len(), 1);
        let tl = &a.memory[0];
        assert_eq!(tl.node, 0);
        assert_eq!(tl.peak, 140);
        assert_eq!(tl.reserved, 140);
        assert_eq!(tl.released, 140);
        assert_eq!(tl.final_occupancy, 0);
        assert!(tl.within_ceiling());
        let occ: Vec<u64> = tl.points.iter().map(|p| p.occupancy).collect();
        assert_eq!(occ, vec![100, 140, 40, 0]);
    }

    #[test]
    fn overflow_windows_track_ceiling_revocations() {
        let events = vec![
            mem_ev("mem.reserve", 0.0, 2, 100, 150, 0),
            // A revocation drops the ceiling below occupancy…
            ev(
                "fault.mem.revoke",
                ENGINE_TRACK,
                at(1.0),
                vec![("node", AttrVal::U64(2)), ("bytes", AttrVal::U64(80))],
                1,
            ),
            // …and a restoration clears it.
            ev(
                "fault.mem.restore",
                ENGINE_TRACK,
                at(3.0),
                vec![("node", AttrVal::U64(2)), ("bytes", AttrVal::U64(80))],
                2,
            ),
            mem_ev("mem.release", 5.0, 2, 100, 150, 3),
        ];
        let a = TraceAnalysis::from_events(&events).unwrap();
        let tl = &a.memory[0];
        assert!(!tl.within_ceiling());
        assert_eq!(tl.overflow.len(), 1);
        let (s, e) = tl.overflow[0];
        assert!((s.as_secs() - 1.0).abs() < 1e-12);
        assert!((e.as_secs() - 3.0).abs() < 1e-12);
        // Ceiling readings: 150, 70, 150, 150.
        let ceils: Vec<u64> = tl.points.iter().map(|p| p.ceiling).collect();
        assert_eq!(ceils, vec![150, 70, 150, 150]);
    }

    #[test]
    fn self_diff_is_zero_and_deltas_show() {
        let events = vec![
            ev("op", ENGINE_TRACK, span(0.0, 2.0), vec![], 0),
            round(0.0, [1.0, 1.0, 0.0, 0.0, 0.0], 0, 1),
        ];
        let mut a = TraceAnalysis::from_events(&events).unwrap();
        a.counters.insert("round.count".into(), 1);
        let d = a.diff(&a.clone());
        assert!(d.is_zero(0.0));
        assert!(d.table().contains("no deltas"));

        let mut b = a.clone();
        b.counters.insert("round.count".into(), 3);
        b.ops[0].attribution.shuffle += 0.5;
        let d = a.diff(&b);
        assert!(!d.is_zero(1e-12));
        let shuffle = d.phases.iter().find(|p| p.phase == Phase::Shuffle).unwrap();
        assert!((shuffle.delta() - 0.5).abs() < 1e-12);
        assert_eq!(
            d.counters
                .iter()
                .find(|c| c.name == "round.count")
                .unwrap()
                .delta(),
            2
        );
        assert!(d.table().contains("round.count"));
    }

    #[test]
    fn jsonl_round_trip_is_bit_exact() {
        use crate::export;
        let sink = ObsSink::enabled();
        sink.span(
            ENGINE_TRACK,
            "op",
            "engine",
            VTime::ZERO,
            VDuration::from_secs(0.1 + 0.2), // not representable exactly
            &[("dir", AttrValue::Str("write"))],
        );
        sink.instant(
            3,
            "mem.reserve",
            "mem",
            VTime::from_secs(1.0 / 3.0),
            &[("node", AttrValue::U64(1)), ("bytes", AttrValue::U64(42))],
        );
        sink.counter_sample(0, "occ", "mem", VTime::from_secs(0.7), 12.5, &[]);
        let mut live = sink.events();
        sort_for_export(&mut live);
        let replayed = TraceEvent::from_jsonl(&export::jsonl(&live)).unwrap();
        assert_eq!(replayed.len(), live.len());
        for (r, l) in replayed.iter().zip(&live) {
            assert_eq!(r.name, l.name);
            assert_eq!(r.track, l.track);
            match (r.kind, l.kind) {
                (
                    EventKind::Span { start: rs, dur: rd },
                    EventKind::Span { start: ls, dur: ld },
                ) => {
                    assert_eq!(rs.as_secs().to_bits(), ls.as_secs().to_bits());
                    assert_eq!(rd.as_secs().to_bits(), ld.as_secs().to_bits());
                }
                (EventKind::Instant { at: ra }, EventKind::Instant { at: la }) => {
                    assert_eq!(ra.as_secs().to_bits(), la.as_secs().to_bits());
                }
                (
                    EventKind::Counter { at: ra, value: rv },
                    EventKind::Counter { at: la, value: lv },
                ) => {
                    assert_eq!(ra.as_secs().to_bits(), la.as_secs().to_bits());
                    assert_eq!(rv.to_bits(), lv.to_bits());
                }
                other => panic!("kind mismatch: {other:?}"),
            }
        }
        // Attribute types survive: u64 stays integral, str stays str.
        let op = replayed.iter().find(|e| e.name == "op").unwrap();
        assert_eq!(op.attr_str("dir"), Some("write"));
        let res = replayed.iter().find(|e| e.name == "mem.reserve").unwrap();
        assert_eq!(res.attr_u64("bytes"), Some(42));
    }

    #[test]
    fn chrome_round_trip_preserves_structure() {
        use crate::export;
        let sink = ObsSink::enabled();
        sink.span(
            ENGINE_TRACK,
            "op",
            "engine",
            VTime::ZERO,
            VDuration::from_secs(1.5),
            &[("bytes", AttrValue::U64(1024))],
        );
        sink.instant(2, "rank.round", "engine", VTime::from_secs(0.25), &[]);
        let mut live = sink.events();
        sort_for_export(&mut live);
        let replayed = TraceEvent::from_chrome(&export::chrome_trace(&live)).unwrap();
        // Metadata records are skipped; the two real events survive.
        assert_eq!(replayed.len(), 2);
        let op = replayed.iter().find(|e| e.name == "op").unwrap();
        assert_eq!(op.track, ENGINE_TRACK);
        assert_eq!(op.attr_u64("bytes"), Some(1024));
        assert!((op.end().as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn phase_names_agree_with_round_phase() {
        for name in PHASE_NAMES {
            let p = Phase::round_phase(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert_eq!(Phase::round_phase("prologue"), None);
    }
}
