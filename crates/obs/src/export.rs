//! Exporters: Chrome `trace_event` JSON and a JSONL event stream.
//!
//! The Chrome format is the JSON-array flavour understood by Perfetto
//! and `chrome://tracing`: one object per event, `"ph": "X"` complete
//! spans with `ts`/`dur` in microseconds, `"i"` instants, `"C"`
//! counters, plus `"M"` metadata records naming each track. Virtual
//! time maps directly onto the trace clock (1 virtual second = 1e6
//! `ts` units), so a Perfetto timeline of one collective op reads in
//! real units.
//!
//! Export order is deterministic: events are sorted by `(track, start,
//! emission sequence)` first, so two runs of the same plan produce
//! byte-identical artifacts regardless of thread scheduling.
//!
//! [`chrome_trace_flows`] additionally renders causal message edges as
//! Chrome **flow events** (`"ph": "s"` at the send, `"ph": "f"` at the
//! binding delivery) so Perfetto draws arrows between rank tracks;
//! flow ids are the deterministic `src · 2³² + seq` and edges are
//! sorted by `(src, seq)`, keeping the artifact byte-identical too.

use crate::causal::CausalEdge;
use crate::json::{self, Value};
use crate::span::{sort_for_export, AttrValue, Event, EventKind, ENGINE_TRACK};

/// Microseconds per virtual second on the trace clock.
const US: f64 = 1e6;

fn fmt_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(x) => x.to_string(),
        AttrValue::F64(x) => {
            if x.is_finite() {
                format!("{x}")
            } else {
                format!("\"{x}\"")
            }
        }
        AttrValue::Str(s) => format!("\"{}\"", json::escape(s)),
    }
}

fn fmt_args(attrs: &[(&'static str, AttrValue)]) -> String {
    let body: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\": {}", json::escape(k), fmt_attr(v)))
        .collect();
    format!("{{{}}}", body.join(", "))
}

fn track_name(track: u32) -> String {
    if track == ENGINE_TRACK {
        "engine (root-priced phases)".to_string()
    } else {
        format!("rank {track}")
    }
}

/// Renders one event as a Chrome record, returning its `ts` (in µs,
/// unrounded) alongside the line for merge ordering.
fn event_row(e: &Event) -> (f64, String) {
    let common = format!(
        "\"name\": \"{}\", \"cat\": \"{}\", \"pid\": 0, \"tid\": {}",
        json::escape(e.name),
        json::escape(e.cat),
        e.track
    );
    match e.kind {
        EventKind::Span { start, dur } => (
            start.as_secs() * US,
            format!(
                "{{{common}, \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {}}}",
                start.as_secs() * US,
                dur.as_secs() * US,
                fmt_args(&e.attrs)
            ),
        ),
        EventKind::Instant { at } => (
            at.as_secs() * US,
            format!(
                "{{{common}, \"ph\": \"i\", \"ts\": {:.3}, \"s\": \"t\", \"args\": {}}}",
                at.as_secs() * US,
                fmt_args(&e.attrs)
            ),
        ),
        EventKind::Counter { at, value } => (
            at.as_secs() * US,
            format!(
                "{{{common}, \"ph\": \"C\", \"ts\": {:.3}, \"args\": {{\"value\": {value}}}}}",
                at.as_secs() * US,
            ),
        ),
    }
}

/// Renders the track-name metadata records for a sorted, deduplicated
/// track list.
fn track_metadata(tracks: &[u32]) -> Vec<String> {
    tracks
        .iter()
        .map(|t| {
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {t}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                json::escape(&track_name(*t))
            )
        })
        .collect()
}

/// Renders events as a Chrome `trace_event` JSON array (sorted copy;
/// the input order does not matter).
#[must_use]
pub fn chrome_trace(events: &[Event]) -> String {
    let mut sorted = events.to_vec();
    sort_for_export(&mut sorted);
    // Track-name metadata, one per distinct track.
    let mut tracks: Vec<u32> = sorted.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut lines = track_metadata(&tracks);
    lines.extend(sorted.iter().map(|e| event_row(e).1));
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// Renders events plus causal message edges as a Chrome `trace_event`
/// array with **flow events**: each edge becomes a `"ph": "s"` record
/// on the sender's track at the departure time and a `"ph": "f"`
/// (binding-point `"e"`) record on the receiver's track at the
/// arrival, sharing the deterministic id `src · 2³² + seq` — Perfetto
/// draws the rank → rank arrows of the blame chain. Rows are merged so
/// `ts` stays monotone per track; byte-identical across runs.
#[must_use]
pub fn chrome_trace_flows(events: &[Event], edges: &[CausalEdge]) -> String {
    let mut sorted = events.to_vec();
    sort_for_export(&mut sorted);
    let mut edges: Vec<CausalEdge> = edges.to_vec();
    edges.sort_by_key(|e| (e.src, e.seq));
    // (tid, ts, line): stable sort keeps events in export order and
    // flow records in (src, seq) order within equal timestamps.
    let mut rows: Vec<(u32, f64, String)> = Vec::with_capacity(sorted.len() + 2 * edges.len());
    for e in &sorted {
        let (ts, line) = event_row(e);
        rows.push((e.track, ts, line));
    }
    for e in &edges {
        let id = e.flow_id();
        let cat = if e.costed {
            "causal.data"
        } else {
            "causal.ctl"
        };
        let depart = e.depart.as_secs() * US;
        let arrive = e.arrive.as_secs() * US;
        rows.push((
            e.src,
            depart,
            format!(
                "{{\"name\": \"msg\", \"cat\": \"{cat}\", \"ph\": \"s\", \"id\": {id}, \
                 \"pid\": 0, \"tid\": {}, \"ts\": {depart:.3}, \
                 \"args\": {{\"bytes\": {}}}}}",
                e.src, e.bytes
            ),
        ));
        rows.push((
            e.dst,
            arrive,
            format!(
                "{{\"name\": \"msg\", \"cat\": \"{cat}\", \"ph\": \"f\", \"bp\": \"e\", \
                 \"id\": {id}, \"pid\": 0, \"tid\": {}, \"ts\": {arrive:.3}, \
                 \"args\": {{\"bytes\": {}}}}}",
                e.dst, e.bytes
            ),
        ));
    }
    rows.sort_by(|a, b| {
        (a.0, a.1)
            .partial_cmp(&(b.0, b.1))
            .expect("virtual times are finite")
    });
    let mut tracks: Vec<u32> = rows.iter().map(|r| r.0).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut lines = track_metadata(&tracks);
    lines.extend(rows.into_iter().map(|r| r.2));
    format!("[\n{}\n]\n", lines.join(",\n"))
}

/// Renders events as a JSONL stream: one self-describing JSON object
/// per line, in deterministic export order — the greppable/streamable
/// companion to the Chrome trace.
#[must_use]
pub fn jsonl(events: &[Event]) -> String {
    let mut sorted = events.to_vec();
    sort_for_export(&mut sorted);
    let mut out = String::new();
    for e in &sorted {
        let (kind, timing) = match e.kind {
            EventKind::Span { start, dur } => (
                "span",
                format!(
                    "\"start_s\": {}, \"dur_s\": {}",
                    start.as_secs(),
                    dur.as_secs()
                ),
            ),
            EventKind::Instant { at } => ("instant", format!("\"at_s\": {}", at.as_secs())),
            EventKind::Counter { at, value } => (
                "counter",
                format!("\"at_s\": {}, \"value\": {value}", at.as_secs()),
            ),
        };
        out.push_str(&format!(
            "{{\"kind\": \"{kind}\", \"name\": \"{}\", \"cat\": \"{}\", \"track\": {}, \
             {timing}, \"attrs\": {}}}\n",
            json::escape(e.name),
            json::escape(e.cat),
            e.track,
            fmt_args(&e.attrs)
        ));
    }
    out
}

/// What [`validate_chrome_trace`] learned about a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChromeSummary {
    /// Total events (excluding metadata records).
    pub events: usize,
    /// Distinct `tid` tracks seen.
    pub tracks: usize,
    /// Names seen, deduplicated, in first-seen order.
    pub names: Vec<String>,
    /// Largest `ts + dur` on any track, in microseconds.
    pub end_ts: f64,
}

impl ChromeSummary {
    /// True when an event with this name appears in the trace.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }
}

/// Validates a Chrome trace document: parses it, checks the required
/// fields of every event, checks that `ts` is monotone
/// (non-decreasing) per track in document order, and checks flow
/// pairing — every `"s"` start carries an id, is matched by exactly
/// one `"f"` finish, and finishes no earlier than it starts.
///
/// # Errors
/// Describes the first violation found.
pub fn validate_chrome_trace(doc: &str) -> Result<ChromeSummary, String> {
    let parsed = json::parse(doc)?;
    let events = parsed.as_arr().ok_or("top level must be a JSON array")?;
    let mut summary = ChromeSummary::default();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    // Flow pairing: id → (start ts, finish ts).
    let mut flows: std::collections::BTreeMap<u64, (Option<f64>, Option<f64>)> =
        std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let obj = e.as_obj().ok_or(format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i} missing \"ph\""))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i} missing \"name\""))?;
        obj.get("pid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} missing \"pid\""))?;
        let tid = obj
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} missing \"tid\""))? as i64;
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        let ts = obj
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or(format!("event {i} ({name}) missing \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {i} ({name}) has bad ts {ts}"));
        }
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}) breaks ts monotonicity on tid {tid}: {ts} < {prev}"
                ));
            }
        }
        last_ts.insert(tid, ts);
        let dur = match ph {
            "X" => obj
                .get("dur")
                .and_then(Value::as_f64)
                .ok_or(format!("complete event {i} ({name}) missing \"dur\""))?,
            "i" | "C" => 0.0,
            "s" | "f" => {
                let id = obj
                    .get("id")
                    .and_then(Value::as_f64)
                    .ok_or(format!("flow event {i} ({name}) missing \"id\""))?
                    as u64;
                let slot = flows.entry(id).or_insert((None, None));
                let side = if ph == "s" { &mut slot.0 } else { &mut slot.1 };
                if side.replace(ts).is_some() {
                    return Err(format!(
                        "flow id {id} has a duplicate \"{ph}\" at event {i}"
                    ));
                }
                0.0
            }
            other => return Err(format!("event {i} ({name}) has unknown ph {other:?}")),
        };
        if dur < 0.0 {
            return Err(format!("event {i} ({name}) has negative dur {dur}"));
        }
        summary.events += 1;
        summary.end_ts = summary.end_ts.max(ts + dur);
        if !summary.has(name) {
            summary.names.push(name.to_string());
        }
    }
    for (id, (s, f)) in &flows {
        match (s, f) {
            (Some(s_ts), Some(f_ts)) if f_ts >= s_ts => {}
            (Some(_), None) => return Err(format!("flow id {id} starts but never finishes")),
            (None, Some(_)) => return Err(format!("flow id {id} finishes without a start")),
            (Some(s_ts), Some(f_ts)) => {
                return Err(format!(
                    "flow id {id} finishes at {f_ts} before its start at {s_ts}"
                ))
            }
            (None, None) => unreachable!("flow entries are created with one side set"),
        }
    }
    summary.tracks = last_ts.len();
    Ok(summary)
}

/// Validates a JSONL stream: every line parses as a JSON object with
/// `kind`, `name`, and `track` fields. Returns the line count.
///
/// # Errors
/// Describes the first bad line.
pub fn validate_jsonl(doc: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        for field in ["kind", "name", "track"] {
            if v.get(field).is_none() {
                return Err(format!("line {} missing {field:?}", i + 1));
            }
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccio_sim::time::{VDuration, VTime};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                name: "op",
                cat: "engine",
                track: ENGINE_TRACK,
                kind: EventKind::Span {
                    start: VTime::ZERO,
                    dur: VDuration::from_secs(1.0),
                },
                attrs: vec![("dir", AttrValue::Str("write"))],
                seq: 0,
            },
            Event {
                name: "round",
                cat: "engine",
                track: ENGINE_TRACK,
                kind: EventKind::Span {
                    start: VTime::from_secs(0.1),
                    dur: VDuration::from_secs(0.4),
                },
                attrs: vec![("flows", AttrValue::U64(12)), ("r", AttrValue::F64(0.5))],
                seq: 1,
            },
            Event {
                name: "fault.mem",
                cat: "fault",
                track: 3,
                kind: EventKind::Instant {
                    at: VTime::from_secs(0.2),
                },
                attrs: vec![],
                seq: 2,
            },
            Event {
                name: "mem.reserved",
                cat: "mem",
                track: ENGINE_TRACK,
                kind: EventKind::Counter {
                    at: VTime::from_secs(0.3),
                    value: 1024.0,
                },
                attrs: vec![],
                seq: 3,
            },
        ]
    }

    #[test]
    fn chrome_trace_validates_and_summarizes() {
        let doc = chrome_trace(&sample_events());
        let summary = validate_chrome_trace(&doc).unwrap();
        assert_eq!(summary.events, 4);
        assert_eq!(summary.tracks, 2);
        assert!(summary.has("op") && summary.has("round") && summary.has("fault.mem"));
        assert!((summary.end_ts - 1e6).abs() < 1e-6, "{}", summary.end_ts);
    }

    #[test]
    fn monotonicity_violations_are_caught() {
        let doc = r#"[
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 0, "tid": 1, "s": "t"},
            {"name": "b", "ph": "i", "ts": 2.0, "pid": 0, "tid": 1, "s": "t"}
        ]"#;
        let err = validate_chrome_trace(doc).unwrap_err();
        assert!(err.contains("monotonicity"), "{err}");
        // Different tracks may interleave freely.
        let ok = r#"[
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 0, "tid": 1, "s": "t"},
            {"name": "b", "ph": "i", "ts": 2.0, "pid": 0, "tid": 2, "s": "t"}
        ]"#;
        assert!(validate_chrome_trace(ok).is_ok());
    }

    #[test]
    fn missing_fields_are_caught() {
        assert!(validate_chrome_trace(r#"[{"ph": "X"}]"#).is_err());
        assert!(validate_chrome_trace(r#"{"not": "array"}"#).is_err());
        assert!(
            validate_chrome_trace(r#"[{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]"#)
                .is_err(),
            "complete event without dur"
        );
    }

    #[test]
    fn export_is_deterministic_regardless_of_input_order() {
        let evs = sample_events();
        let mut reversed = evs.clone();
        reversed.reverse();
        assert_eq!(chrome_trace(&evs), chrome_trace(&reversed));
        assert_eq!(jsonl(&evs), jsonl(&reversed));
    }

    #[test]
    fn flow_events_pair_and_validate() {
        use mccio_sim::time::VTime;
        let edges = vec![
            CausalEdge {
                src: 3,
                dst: 0,
                seq: 2,
                bytes: 512,
                costed: true,
                depart: VTime::from_secs(0.2),
                arrive: VTime::from_secs(0.35),
            },
            CausalEdge {
                src: 0,
                dst: 3,
                seq: 1,
                bytes: 0,
                costed: false,
                depart: VTime::from_secs(0.05),
                arrive: VTime::from_secs(0.1),
            },
        ];
        let doc = chrome_trace_flows(&sample_events(), &edges);
        let summary = validate_chrome_trace(&doc).unwrap();
        // 4 sample events + 2 flow starts + 2 flow finishes.
        assert_eq!(summary.events, 8);
        assert!(summary.has("msg"));
        // Edge order in the input must not matter.
        let mut reversed = edges.clone();
        reversed.reverse();
        assert_eq!(doc, chrome_trace_flows(&sample_events(), &reversed));
        // Without edges the flow export degrades to the plain trace.
        assert_eq!(
            validate_chrome_trace(&chrome_trace_flows(&sample_events(), &[])).unwrap(),
            validate_chrome_trace(&chrome_trace(&sample_events())).unwrap()
        );
    }

    #[test]
    fn broken_flow_pairing_is_caught() {
        let orphan_start = r#"[
            {"name": "msg", "ph": "s", "id": 7, "ts": 1.0, "pid": 0, "tid": 0}
        ]"#;
        let err = validate_chrome_trace(orphan_start).unwrap_err();
        assert!(err.contains("never finishes"), "{err}");
        let orphan_finish = r#"[
            {"name": "msg", "ph": "f", "bp": "e", "id": 7, "ts": 1.0, "pid": 0, "tid": 0}
        ]"#;
        let err = validate_chrome_trace(orphan_finish).unwrap_err();
        assert!(err.contains("without a start"), "{err}");
        let backwards = r#"[
            {"name": "msg", "ph": "s", "id": 7, "ts": 2.0, "pid": 0, "tid": 0},
            {"name": "msg", "ph": "f", "bp": "e", "id": 7, "ts": 1.0, "pid": 0, "tid": 1}
        ]"#;
        let err = validate_chrome_trace(backwards).unwrap_err();
        assert!(err.contains("before its start"), "{err}");
        let missing_id = r#"[
            {"name": "msg", "ph": "s", "ts": 1.0, "pid": 0, "tid": 0}
        ]"#;
        let err = validate_chrome_trace(missing_id).unwrap_err();
        assert!(err.contains("missing \"id\""), "{err}");
        let duplicate = r#"[
            {"name": "msg", "ph": "s", "id": 7, "ts": 1.0, "pid": 0, "tid": 0},
            {"name": "msg", "ph": "s", "id": 7, "ts": 1.5, "pid": 0, "tid": 0}
        ]"#;
        let err = validate_chrome_trace(duplicate).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn flow_round_trip_replays_spans_only() {
        use mccio_sim::time::VTime;
        let edges = vec![CausalEdge {
            src: 3,
            dst: 0,
            seq: 1,
            bytes: 64,
            costed: true,
            depart: VTime::from_secs(0.2),
            arrive: VTime::from_secs(0.35),
        }];
        let doc = chrome_trace_flows(&sample_events(), &edges);
        // from_chrome skips flow records like metadata: the replay sees
        // exactly the four sample events.
        let replayed = crate::analyze::TraceEvent::from_chrome(&doc).unwrap();
        assert_eq!(replayed.len(), 4);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_attrs() {
        let doc = jsonl(&sample_events());
        assert_eq!(validate_jsonl(&doc).unwrap(), 4);
        let span_line = doc
            .lines()
            .find(|l| l.contains("\"op\""))
            .expect("op span exported");
        let v = crate::json::parse(span_line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("span"));
        assert_eq!(
            v.get("attrs").unwrap().get("dir").unwrap().as_str(),
            Some("write")
        );
    }
}
