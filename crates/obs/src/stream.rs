//! Streaming aggregation: bounded-memory observability for extreme
//! rank counts.
//!
//! The buffered [`ObsSink`](crate::ObsSink) retains every event, which
//! is O(ranks × rounds) memory — infeasible at the 100k-rank scale the
//! event executor reaches. A *streaming* sink folds the per-rank event
//! firehose into this module's [`StreamAgg`] instead: online statistics
//! per aggregation cell, plus a deterministic top-k straggler list, plus
//! a small set of *exemplar* rank tracks retained at full fidelity so
//! Chrome-trace export still shows real span lanes at scale.
//!
//! ## What is retained vs folded
//!
//! * Engine-track spans and instants (root-priced rounds, phases,
//!   faults) are **retained** verbatim: they are O(rounds), not
//!   O(ranks), and the critical-path analyzer needs them exact.
//! * Span/instant events on *exemplar* rank tracks are retained: rank
//!   `r` is an exemplar iff `r % stride == 0 && r / stride <
//!   exemplar_max` ([`StreamConfig`]), a rule chosen to be a pure
//!   function of the rank number so the exemplar set is identical
//!   across executors and runs.
//! * Everything else — per-rank events from non-exemplar ranks and
//!   *all* counter samples (including the O(nodes) per-node peak
//!   samples the engine emits on the engine track) — is **folded** into
//!   a [`StreamCell`] and dropped.
//!
//! ## Determinism rule
//!
//! The threaded executor delivers events in nondeterministic order, so
//! every folded quantity must be order-independent: sums accumulate in
//! `u128` over exact integer inputs (span durations are converted to
//! whole nanoseconds, a deterministic function of the priced `f64`),
//! min/max and log₂ bucket counts are trivially commutative, and the
//! top-k straggler list keeps the k largest `(value, rank)` entries
//! under the canonical order *value descending, rank ascending* — a
//! total order on the folded value bits, so the surviving set (not just
//! its statistics) is bit-stable across executors.
//!
//! ## Memory bound
//!
//! Cells are keyed `(event name, virtual-time bits)`. Rank clocks move
//! in lockstep between rounds, so the per-rank events of one logical
//! point share one virtual time and land in one cell: the cell count
//! grows with *rounds and faults*, never with ranks. Each cell holds
//! fixed-size statistics (65 log₂ buckets, k straggler slots per
//! tracked quantity), so steady-state folding allocates nothing.

use std::collections::BTreeMap;

use mccio_sim::time::VTime;

use crate::span::{AttrValue, Event, EventKind, ENGINE_TRACK};

/// Configuration for a streaming sink; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Straggler slots retained per folded quantity.
    pub top_k: usize,
    /// Exemplar stride: rank `r` keeps full-fidelity lanes iff
    /// `r % exemplar_stride == 0` and the quota below allows it.
    /// Clamped to at least 1.
    pub exemplar_stride: u32,
    /// Maximum number of exemplar ranks (`r / stride < exemplar_max`).
    pub exemplar_max: u32,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            top_k: 8,
            exemplar_stride: 1,
            exemplar_max: 8,
        }
    }
}

impl StreamConfig {
    /// A config whose exemplar set is `max` ranks strided evenly
    /// across a world of `n_ranks`.
    #[must_use]
    pub fn for_ranks(n_ranks: usize, max: u32) -> Self {
        let stride = ((n_ranks as u32) / max.max(1)).max(1);
        StreamConfig {
            exemplar_stride: stride,
            exemplar_max: max.max(1),
            ..StreamConfig::default()
        }
    }
}

/// Number of log₂ buckets in an [`OnlineStat`] (bucket `i` counts
/// values whose bit length is `i`; identical to
/// [`Histogram`](crate::metrics::Histogram) binning).
pub const N_BUCKETS: usize = 65;

/// Order-independent online statistics over one folded `u64` quantity,
/// with a canonical top-k `(value, rank)` straggler list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineStat {
    /// Observations folded.
    pub count: u64,
    /// Exact sum (u128: 2⁶⁴ observations of u64 cannot overflow).
    pub sum: u128,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Log₂ bucket counts; see [`N_BUCKETS`].
    pub buckets: Vec<u64>,
    /// The k largest `(value, rank)` observations, ordered value
    /// descending then rank ascending (the canonical straggler order;
    /// see the module docs).
    pub top: Vec<(u64, u32)>,
}

impl OnlineStat {
    fn new() -> Self {
        OnlineStat {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; N_BUCKETS],
            top: Vec::new(),
        }
    }

    fn fold(&mut self, value: u64, rank: u32, top_k: usize) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = (64 - value.leading_zeros() as usize).min(N_BUCKETS - 1);
        self.buckets[idx] += 1;
        if top_k == 0 {
            return;
        }
        // Canonical order: value desc, rank asc. Insertion keeps the
        // list sorted; k is small so a linear scan is the fast path.
        let pos = self
            .top
            .iter()
            .position(|&(v, r)| (value > v) || (value == v && rank < r))
            .unwrap_or(self.top.len());
        if pos < top_k {
            self.top.insert(pos, (value, rank));
            self.top.truncate(top_k);
        }
    }

    /// Mean of the folded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, or 0 when empty (for display).
    #[must_use]
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// `(upper bound, count)` per non-empty log₂ bucket.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                (bound, c)
            })
            .collect()
    }
}

/// The folded statistics of one aggregation cell — every event sharing
/// one `(name, virtual time)` point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCell {
    /// Events folded into this cell.
    pub count: u64,
    /// `"span"`, `"instant"`, or `"counter"` (cells never mix kinds:
    /// the engine emits each name with one kind).
    pub kind: &'static str,
    /// Span durations in whole nanoseconds (empty unless `kind` is
    /// `"span"`). Its `top` list is the per-cell straggler table.
    pub dur_nanos: OnlineStat,
    /// Counter sample values (empty unless `kind` is `"counter"`).
    pub value: OnlineStat,
    /// Per-attribute statistics over the events' `u64` attributes.
    pub attrs: BTreeMap<&'static str, OnlineStat>,
}

impl StreamCell {
    fn new(kind: &'static str) -> Self {
        StreamCell {
            count: 0,
            kind,
            dur_nanos: OnlineStat::new(),
            value: OnlineStat::new(),
            attrs: BTreeMap::new(),
        }
    }
}

/// Converts a priced span duration to whole nanoseconds — the
/// deterministic integer domain every folded sum uses.
#[must_use]
pub fn dur_to_nanos(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}

/// The streaming aggregate: bounded-memory statistics plus retention
/// bookkeeping. Built live by a streaming sink, or offline from a
/// buffered event list via [`StreamAgg::from_events`] (both paths run
/// the same fold, which is what the equivalence tests pin).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamAgg {
    cfg: StreamConfig,
    cells: BTreeMap<(&'static str, u64), StreamCell>,
    /// Events folded (dropped after aggregation).
    pub folded_events: u64,
    /// Events retained verbatim (engine track + exemplar lanes).
    pub retained_events: u64,
}

impl StreamAgg {
    /// An empty aggregate.
    #[must_use]
    pub fn new(cfg: StreamConfig) -> Self {
        StreamAgg {
            cfg,
            cells: BTreeMap::new(),
            folded_events: 0,
            retained_events: 0,
        }
    }

    /// The configuration this aggregate folds under.
    #[must_use]
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Whether rank track `track` keeps full-fidelity lanes.
    #[must_use]
    pub fn is_exemplar(&self, track: u32) -> bool {
        let stride = self.cfg.exemplar_stride.max(1);
        track.is_multiple_of(stride) && track / stride < self.cfg.exemplar_max
    }

    /// Whether an event on `track` of kind `kind` is retained verbatim
    /// (engine-track or exemplar span/instant) rather than folded.
    /// Counter samples are always folded — the engine emits O(nodes)
    /// of them per op on the engine track.
    #[must_use]
    pub fn retains(&self, track: u32, kind: &EventKind) -> bool {
        if matches!(kind, EventKind::Counter { .. }) {
            return false;
        }
        track == ENGINE_TRACK || self.is_exemplar(track)
    }

    /// Counts a retained event (the sink keeps the event itself).
    pub fn note_retained(&mut self) {
        self.retained_events += 1;
    }

    /// Folds one event into its cell. The caller has already decided
    /// (via [`StreamAgg::retains`]) that the event is not retained.
    pub fn fold(
        &mut self,
        track: u32,
        name: &'static str,
        kind: &EventKind,
        attrs: &[(&'static str, AttrValue)],
    ) {
        self.folded_events += 1;
        let at_bits = kind.at().as_secs().to_bits();
        let kind_name = match kind {
            EventKind::Span { .. } => "span",
            EventKind::Instant { .. } => "instant",
            EventKind::Counter { .. } => "counter",
        };
        let top_k = self.cfg.top_k;
        let cell = self
            .cells
            .entry((name, at_bits))
            .or_insert_with(|| StreamCell::new(kind_name));
        cell.count += 1;
        match *kind {
            EventKind::Span { dur, .. } => {
                cell.dur_nanos
                    .fold(dur_to_nanos(dur.as_secs()), track, top_k);
            }
            EventKind::Counter { value, .. } => {
                // Counter samples in this codebase are integral byte
                // counts carried as f64; round-trip deterministically.
                cell.value.fold(value.round() as u64, track, top_k);
            }
            EventKind::Instant { .. } => {}
        }
        for &(key, value) in attrs {
            if let AttrValue::U64(v) = value {
                cell.attrs
                    .entry(key)
                    .or_insert_with(OnlineStat::new)
                    .fold(v, track, top_k);
            }
        }
    }

    /// Routes one event: folds it and reports `false`, or counts it
    /// retained and reports `true` (the caller keeps it).
    pub fn route(&mut self, event: &Event) -> bool {
        if self.retains(event.track, &event.kind) {
            self.note_retained();
            true
        } else {
            self.fold(event.track, event.name, &event.kind, &event.attrs);
            false
        }
    }

    /// Derives the aggregate a streaming sink would have produced from
    /// a fully-buffered event list — the offline half of the
    /// streaming-equivalence contract.
    #[must_use]
    pub fn from_events<'a, I>(events: I, cfg: StreamConfig) -> StreamAgg
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut agg = StreamAgg::new(cfg);
        for e in events {
            agg.route(e);
        }
        agg
    }

    /// Number of aggregation cells held.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Iterates the cells in key order: `(name, virtual time, cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (&'static str, VTime, &StreamCell)> {
        self.cells
            .iter()
            .map(|(&(name, bits), cell)| (name, VTime::from_secs(f64::from_bits(bits)), cell))
    }

    /// Per-name rollup across cells, in name order: `(name, cells,
    /// events folded)`.
    #[must_use]
    pub fn by_name(&self) -> Vec<(&'static str, usize, u64)> {
        let mut rollup: BTreeMap<&'static str, (usize, u64)> = BTreeMap::new();
        for (&(name, _), cell) in &self.cells {
            let e = rollup.entry(name).or_insert((0, 0));
            e.0 += 1;
            e.1 += cell.count;
        }
        rollup
            .into_iter()
            .map(|(name, (cells, events))| (name, cells, events))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccio_sim::time::VDuration;

    fn span_on(track: u32, name: &'static str, at: f64, dur: f64) -> Event {
        Event {
            name,
            cat: "t",
            track,
            kind: EventKind::Span {
                start: VTime::from_secs(at),
                dur: VDuration::from_secs(dur),
            },
            attrs: vec![("bytes", AttrValue::U64(track as u64 * 10))],
            seq: 0,
        }
    }

    #[test]
    fn exemplar_rule_is_strided_and_capped() {
        let agg = StreamAgg::new(StreamConfig {
            exemplar_stride: 4,
            exemplar_max: 3,
            ..StreamConfig::default()
        });
        let exemplars: Vec<u32> = (0..32).filter(|&r| agg.is_exemplar(r)).collect();
        assert_eq!(exemplars, vec![0, 4, 8]);
    }

    #[test]
    fn counters_always_fold_even_on_engine_track() {
        let mut agg = StreamAgg::new(StreamConfig::default());
        let e = Event {
            name: "mem.peak_reserved",
            cat: "mem",
            track: ENGINE_TRACK,
            kind: EventKind::Counter {
                at: VTime::from_secs(1.0),
                value: 4096.0,
            },
            attrs: vec![],
            seq: 0,
        };
        assert!(!agg.route(&e));
        assert_eq!(agg.folded_events, 1);
        let (_, _, cell) = agg.cells().next().unwrap();
        assert_eq!(cell.kind, "counter");
        assert_eq!(cell.value.sum, 4096);
    }

    #[test]
    fn fold_is_order_independent_and_topk_canonical() {
        let cfg = StreamConfig {
            top_k: 3,
            exemplar_stride: 1,
            exemplar_max: 0,
        };
        // Ranks 1..=20 with duration proportional to rank; ranks 7 and
        // 9 tie in duration with rank 19.
        let mut events: Vec<Event> = (1..=20u32)
            .map(|r| {
                let d = match r {
                    7 | 9 => 19.0,
                    r => f64::from(r),
                };
                span_on(r, "prologue", 5.0, d * 1e-3)
            })
            .collect();
        let forward = StreamAgg::from_events(events.iter(), cfg);
        events.reverse();
        let backward = StreamAgg::from_events(events.iter(), cfg);
        assert_eq!(forward, backward, "fold must be order-independent");

        let (_, at, cell) = forward.cells().next().unwrap();
        assert_eq!(at.as_secs().to_bits(), 5.0f64.to_bits());
        assert_eq!(cell.count, 20);
        assert_eq!(cell.dur_nanos.count, 20);
        // Largest durations: rank 20 (20ms), then the 19ms three-way
        // tie broken by rank ascending: 7 beats 9 beats 19.
        let top: Vec<(u64, u32)> = cell.dur_nanos.top.clone();
        assert_eq!(
            top,
            vec![(20_000_000, 20), (19_000_000, 7), (19_000_000, 9)]
        );
        // Attribute stats fold the u64 attr exactly.
        let bytes = &cell.attrs["bytes"];
        assert_eq!(bytes.sum, (1..=20u128).map(|r| r * 10).sum::<u128>());
        assert_eq!(bytes.max, 200);
        assert_eq!(bytes.min, 10);
    }

    #[test]
    fn retention_splits_engine_exemplar_and_bulk() {
        let mut agg = StreamAgg::new(StreamConfig {
            exemplar_stride: 8,
            exemplar_max: 2,
            ..StreamConfig::default()
        });
        // Engine-track span: retained.
        assert!(agg.route(&span_on(ENGINE_TRACK, "round", 1.0, 0.5)));
        // Exemplar ranks 0 and 8: retained.
        assert!(agg.route(&span_on(0, "prologue", 1.0, 0.1)));
        assert!(agg.route(&span_on(8, "prologue", 1.0, 0.1)));
        // Rank 16 is past the quota; rank 3 misses the stride.
        assert!(!agg.route(&span_on(16, "prologue", 1.0, 0.1)));
        assert!(!agg.route(&span_on(3, "prologue", 1.0, 0.1)));
        assert_eq!(agg.retained_events, 3);
        assert_eq!(agg.folded_events, 2);
        assert_eq!(agg.cell_count(), 1);
        assert_eq!(agg.by_name(), vec![("prologue", 1, 2)]);
    }

    #[test]
    fn bucket_binning_matches_histogram_rule() {
        let mut s = OnlineStat::new();
        for v in [0u64, 1, 2, 3, 4, u64::MAX] {
            s.fold(v, 0, 0);
        }
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[64], 1); // u64::MAX
        assert_eq!(s.nonzero_buckets().len(), 5);
        assert_eq!(s.min_or_zero(), 0);
        assert_eq!(s.max, u64::MAX);
    }
}
