//! A small, self-contained JSON parser — just enough to validate the
//! artifacts this crate emits (and for the bench harness to read
//! recorded baselines). The workspace is dependency-free by design, so
//! no serde.
//!
//! Supports the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) with a recursion-depth cap.
//! Numbers are parsed as `f64`, which is exact for every integer the
//! exporters emit (timestamps in microseconds, counts).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (keys in sorted order).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as f64, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object, if an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects: `value.get("key")`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Maximum nesting depth accepted; the exporters emit depth ≤ 4.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document (ignoring surrounding whitespace).
///
/// # Errors
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates are not emitted by the exporters;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }
}

/// Escapes a string for embedding in emitted JSON.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1] trailing").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        // Round trip through the parser.
        let doc = format!("\"{}\"", escape("quote\" slash\\ tab\t"));
        assert_eq!(parse(&doc).unwrap().as_str(), Some("quote\" slash\\ tab\t"));
    }

    #[test]
    fn depth_cap_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
