//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Names are static strings from the instrumentation sites (the event
//! taxonomy in DESIGN.md §10), stored in `BTreeMap`s so every snapshot
//! and summary table comes out in deterministic order. Histograms keep
//! enough moments (count, sum, sum of squares, min, max) to report the
//! mean and coefficient of variation directly — the paper's
//! memory-variance statistic — on top of the per-power-of-two bucket
//! counts.

use std::collections::BTreeMap;

/// Number of log₂ buckets: bucket `i` counts values in
/// `[2^(i-1), 2^i)`, with bucket 0 holding only zero.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram with running moments.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize; // 0 for 0, 1 for 1, …
        self.buckets[idx.min(BUCKETS - 1)] += 1;
        let v = value as f64;
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0.0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of the observations (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0.0 when empty).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        (self.sum_sq / n - mean * mean).max(0.0).sqrt()
    }

    /// Coefficient of variation, `stddev / mean` — the paper's
    /// cross-node memory-variance statistic (0.0 when the mean is 0).
    #[must_use]
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs;
    /// bucket `[2^(i-1), 2^i)` reports `2^i` (bucket 0, holding only
    /// zero, reports 1; the top bucket saturates at `u64::MAX`).
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = match i {
                    0 => 1u64,
                    64 => u64::MAX,
                    _ => 1u64 << i,
                };
                (bound, c)
            })
            .collect()
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Raises the named gauge to `value` if it is higher than the
    /// current reading (high-water-mark semantics).
    pub fn gauge_max(&mut self, name: &'static str, value: f64) {
        let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// The named counter's value (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if anything was observed into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// The counters as an owned name → value map (the analyzer's
    /// run-comparison currency).
    #[must_use]
    pub fn counter_map(&self) -> std::collections::BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// The gauges as an owned name → value map (the analyzer's
    /// run-snapshot currency, mirroring [`MetricsRegistry::counter_map`]).
    #[must_use]
    pub fn gauge_map(&self) -> std::collections::BTreeMap<String, f64> {
        self.gauges
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect()
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// The histograms as an owned name → histogram map, completing the
    /// [`MetricsRegistry::counter_map`] / [`MetricsRegistry::gauge_map`]
    /// accessor family.
    #[must_use]
    pub fn histogram_map(&self) -> std::collections::BTreeMap<String, Histogram> {
        self.histograms
            .iter()
            .map(|(&k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Folds another registry into this one: counters add, gauges take
    /// the maximum, histograms merge bucket-wise.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauge_max(name, *v);
        }
        for (name, h) in &other.histograms {
            let mine = self.histograms.entry(name).or_default();
            for (b, c) in mine.buckets.iter_mut().zip(&h.buckets) {
                *b += c;
            }
            mine.count += h.count;
            mine.sum += h.sum;
            mine.sum_sq += h.sum_sq;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
        }
    }

    /// A fixed-width text table of everything recorded, in name order —
    /// the `trace` binary's metrics summary.
    #[must_use]
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<36} {v:>16}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<36} {v:>16.1}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<36} n={} mean={:.1} cov={:.3} min={:.0} max={:.0}",
                    h.count(),
                    h.mean(),
                    h.cov(),
                    h.min(),
                    h.max()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a", 3);
        m.counter_add("a", 4);
        assert_eq!(m.counter("a"), 7);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("g", 5.0);
        m.gauge_max("g", 3.0);
        assert_eq!(m.gauge("g"), Some(5.0));
        m.gauge_max("g", 9.0);
        assert_eq!(m.gauge("g"), Some(9.0));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let buckets = h.nonzero_buckets();
        // 0 → bound 1; 1 → bound 2; 2 and 3 → bound 4; 4 → 8; 1024 → 2048.
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2), (8, 1), (2048, 1)]);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1024.0);
    }

    #[test]
    fn histogram_moments_give_mean_and_cov() {
        let mut h = Histogram::default();
        for v in [10u64, 10, 10, 10] {
            h.observe(v);
        }
        assert_eq!(h.mean(), 10.0);
        assert_eq!(h.cov(), 0.0);
        h.observe(50);
        assert!(h.cov() > 0.0);
        assert_eq!(Histogram::default().mean(), 0.0);
        assert_eq!(Histogram::default().cov(), 0.0);
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 2.0);
        a.observe("h", 8);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 5.0);
        b.observe("h", 16);
        a.absorb(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(5.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 24.0);
    }

    #[test]
    fn map_accessors_mirror_each_other() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", 1);
        m.gauge_set("g", 2.0);
        m.observe("h", 8);
        assert_eq!(m.counter_map().get("c"), Some(&1));
        assert_eq!(m.gauge_map().get("g"), Some(&2.0));
        let hm = m.histogram_map();
        assert_eq!(hm.len(), 1);
        assert_eq!(hm["h"].count(), 1);
        assert_eq!(hm["h"], *m.histogram("h").unwrap());
    }

    #[test]
    fn summary_table_lists_names() {
        let mut m = MetricsRegistry::new();
        m.counter_add("shuffle.bytes", 4096);
        m.observe("mem.node_peak", 1 << 20);
        let t = m.summary_table();
        assert!(t.contains("shuffle.bytes"));
        assert!(t.contains("mem.node_peak"));
    }
}
