//! [`ObsSink`] — the per-environment collection point for spans and
//! metrics.
//!
//! One sink is carried by each `IoEnv` (cheaply cloned alongside it, all
//! clones share the same buffers), so concurrent simulation worlds each
//! record into their own sink instead of interleaving into one
//! process-global `Mutex` — the cross-world attribution caveat of the
//! process-global recorder `core::stats` used to carry is structurally
//! gone.
//!
//! The default sink is **disabled**: `inner` is `None`, every record
//! method is one predictable branch and an immediate return — no locks
//! taken, nothing allocated, no clocks touched. Enabled or not,
//! recording never advances virtual time, so traces are a pure
//! side-channel: the engine's priced times are bit-identical with
//! tracing on or off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mccio_sim::time::{VDuration, VTime};

use crate::metrics::MetricsRegistry;
use crate::span::{AttrValue, Event, EventKind};

#[derive(Debug, Default)]
struct Inner {
    events: Mutex<Vec<Event>>,
    metrics: Mutex<MetricsRegistry>,
    seq: AtomicU64,
}

/// A handle to a span/metrics sink; see the module docs. Clones share
/// the same buffers.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Inner>>,
}

impl ObsSink {
    /// The disabled sink: every record call is inert.
    #[must_use]
    pub fn disabled() -> Self {
        ObsSink { inner: None }
    }

    /// A recording sink.
    #[must_use]
    pub fn enabled() -> Self {
        ObsSink {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// True when this sink records; instrumentation sites may use this
    /// to skip attribute construction entirely.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a complete span.
    #[inline]
    pub fn span(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        start: VTime,
        dur: VDuration,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.push(Event {
            name,
            cat,
            track,
            kind: EventKind::Span { start, dur },
            attrs: attrs.to_vec(),
            seq: 0,
        });
    }

    /// Records a zero-duration mark.
    #[inline]
    pub fn instant(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        at: VTime,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.push(Event {
            name,
            cat,
            track,
            kind: EventKind::Instant { at },
            attrs: attrs.to_vec(),
            seq: 0,
        });
    }

    /// Records a counter sample on a track.
    #[inline]
    pub fn counter_sample(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        at: VTime,
        value: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.push(Event {
            name,
            cat,
            track,
            kind: EventKind::Counter { at, value },
            attrs: attrs.to_vec(),
            seq: 0,
        });
    }

    /// Adds `delta` to the named registry counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .counter_add(name, delta);
    }

    /// Sets the named registry gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .gauge_set(name, value);
    }

    /// Raises the named registry gauge to `value` if higher.
    #[inline]
    pub fn gauge_max(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .gauge_max(name, value);
    }

    /// Records one observation into the named histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .observe(name, value);
    }

    /// Events recorded so far (copied, in emission order).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("events lock").clone(),
            None => Vec::new(),
        }
    }

    /// Removes and returns everything recorded so far.
    #[must_use]
    pub fn take_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.events.lock().expect("events lock")),
            None => Vec::new(),
        }
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("events lock").len(),
            None => 0,
        }
    }

    /// True when nothing has been recorded (always true when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the metrics registry (empty when disabled).
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(inner) => inner.metrics.lock().expect("metrics lock").clone(),
            None => MetricsRegistry::new(),
        }
    }
}

impl Inner {
    fn push(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().expect("events lock").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let s = ObsSink::disabled();
        assert!(!s.is_enabled());
        s.span(0, "a", "t", VTime::ZERO, VDuration::ZERO, &[]);
        s.instant(0, "b", "t", VTime::ZERO, &[]);
        s.counter_add("c", 1);
        s.observe("h", 2);
        assert!(s.is_empty());
        assert_eq!(s.metrics().counter("c"), 0);
    }

    #[test]
    fn enabled_sink_records_in_sequence() {
        let s = ObsSink::enabled();
        assert!(s.is_enabled());
        s.span(0, "a", "t", VTime::ZERO, VDuration::from_secs(1.0), &[]);
        s.instant(
            1,
            "b",
            "t",
            VTime::from_secs(0.5),
            &[("n", AttrValue::U64(3))],
        );
        let events = s.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].attr_u64("n"), Some(3));
        assert_eq!(s.take_events().len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn clones_share_buffers() {
        let s = ObsSink::enabled();
        let t = s.clone();
        t.counter_add("c", 5);
        t.instant(0, "x", "t", VTime::ZERO, &[]);
        assert_eq!(s.metrics().counter("c"), 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn concurrent_emission_is_safe_and_complete() {
        let s = ObsSink::enabled();
        std::thread::scope(|scope| {
            for rank in 0..8u32 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        s.instant(rank, "tick", "t", VTime::from_secs(i as f64), &[]);
                        s.counter_add("ticks", 1);
                    }
                });
            }
        });
        assert_eq!(s.len(), 800);
        assert_eq!(s.metrics().counter("ticks"), 800);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = s.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 800);
    }
}
