//! [`ObsSink`] — the per-environment collection point for spans and
//! metrics.
//!
//! One sink is carried by each `IoEnv` (cheaply cloned alongside it, all
//! clones share the same buffers), so concurrent simulation worlds each
//! record into their own sink instead of interleaving into one
//! process-global `Mutex` — the cross-world attribution caveat of the
//! process-global recorder `core::stats` used to carry is structurally
//! gone.
//!
//! The default sink is **disabled**: `inner` is `None`, every record
//! method is one predictable branch and an immediate return — no locks
//! taken, nothing allocated, no clocks touched. Enabled or not,
//! recording never advances virtual time, so traces are a pure
//! side-channel: the engine's priced times are bit-identical with
//! tracing on or off.
//!
//! A **streaming** sink ([`ObsSink::streaming`]) additionally carries a
//! [`StreamAgg`]: events the aggregate declines to retain are folded
//! into bounded online statistics *without ever being allocated* (the
//! fold reads the caller's attribute slice directly), so observability
//! memory is independent of rank count. See `obs::stream`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mccio_sim::time::{VDuration, VTime};

use crate::causal::{BlameChain, CausalAgg, CausalEdge};
use crate::metrics::MetricsRegistry;
use crate::span::{AttrValue, Event, EventKind};
use crate::stream::{StreamAgg, StreamConfig};

#[derive(Debug, Default)]
struct Inner {
    events: Mutex<Vec<Event>>,
    metrics: Mutex<MetricsRegistry>,
    seq: AtomicU64,
    /// Present on streaming sinks: the bounded aggregate that decides
    /// retention and absorbs everything it declines.
    stream: Option<Mutex<StreamAgg>>,
    /// Present once [`ObsSink::with_causal`] is called: the online
    /// happens-before fold the engine's world hooks into.
    causal: OnceLock<Arc<CausalAgg>>,
}

/// A handle to a span/metrics sink; see the module docs. Clones share
/// the same buffers.
#[derive(Debug, Clone, Default)]
pub struct ObsSink {
    inner: Option<Arc<Inner>>,
}

impl ObsSink {
    /// The disabled sink: every record call is inert.
    #[must_use]
    pub fn disabled() -> Self {
        ObsSink { inner: None }
    }

    /// A recording sink.
    #[must_use]
    pub fn enabled() -> Self {
        ObsSink {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A streaming sink: events are routed through a bounded
    /// [`StreamAgg`] and only engine-track and exemplar-lane
    /// span/instant events are retained (see `obs::stream`).
    #[must_use]
    pub fn streaming(cfg: StreamConfig) -> Self {
        ObsSink {
            inner: Some(Arc::new(Inner {
                stream: Some(Mutex::new(StreamAgg::new(cfg))),
                ..Inner::default()
            })),
        }
    }

    /// True when this sink folds through a streaming aggregate.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.stream.is_some())
    }

    /// Arms message-causality tracing on this sink (builder style).
    /// The engine installs the returned hook on its world at op start
    /// and every delivery folds into the online frontier
    /// ([`crate::causal`]). Per-edge records for Chrome flow export are
    /// retained only on buffered sinks — a streaming sink keeps causal
    /// memory rank-bounded. A no-op on the disabled sink.
    #[must_use]
    pub fn with_causal(self) -> Self {
        if let Some(inner) = &self.inner {
            let retain_edges = inner.stream.is_none();
            let _ = inner.causal.set(Arc::new(CausalAgg::new(retain_edges)));
        }
        self
    }

    /// True when causal tracing is armed.
    #[must_use]
    pub fn is_causal(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.causal.get().is_some())
    }

    /// The causal hook for the engine's world, when armed.
    #[must_use]
    pub fn causal_hook(&self) -> Option<Arc<dyn mccio_sim::causal::CausalSink>> {
        let agg = Arc::clone(self.inner.as_ref()?.causal.get()?);
        Some(agg)
    }

    /// The causal aggregate itself (chains, edges, fold statistics),
    /// when armed.
    #[must_use]
    pub fn causal(&self) -> Option<Arc<CausalAgg>> {
        Some(Arc::clone(self.inner.as_ref()?.causal.get()?))
    }

    /// Closes an op window on the causal fold: walks the frontier of
    /// rank 0 (the rank that prices the op span) back from `end`,
    /// clamped at `t0`, and records the blame chain. Inert unless
    /// causal tracing is armed.
    pub fn causal_op_end(&self, t0: VTime, end: VTime, dir: &'static str) {
        if let Some(agg) = self.causal() {
            agg.op_end(0, t0, end, dir);
        }
    }

    /// Blame chains recorded so far, in op order (empty unless armed).
    #[must_use]
    pub fn causal_chains(&self) -> Vec<BlameChain> {
        self.causal().map_or_else(Vec::new, |agg| agg.chains())
    }

    /// Retained causal message edges in deterministic `(src, seq)`
    /// order (empty unless armed on a buffered sink).
    #[must_use]
    pub fn causal_edges(&self) -> Vec<CausalEdge> {
        self.causal().map_or_else(Vec::new, |agg| agg.edges())
    }

    /// A snapshot of the streaming aggregate (`None` on buffered or
    /// disabled sinks).
    #[must_use]
    pub fn stream_stats(&self) -> Option<StreamAgg> {
        let inner = self.inner.as_ref()?;
        let stream = inner.stream.as_ref()?;
        Some(stream.lock().expect("stream lock").clone())
    }

    /// True when this sink records; instrumentation sites may use this
    /// to skip attribute construction entirely.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a complete span.
    #[inline]
    pub fn span(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        start: VTime,
        dur: VDuration,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.record(track, name, cat, EventKind::Span { start, dur }, attrs);
    }

    /// Records a zero-duration mark.
    #[inline]
    pub fn instant(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        at: VTime,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.record(track, name, cat, EventKind::Instant { at }, attrs);
    }

    /// Records a counter sample on a track.
    #[inline]
    pub fn counter_sample(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        at: VTime,
        value: f64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let Some(inner) = &self.inner else { return };
        inner.record(track, name, cat, EventKind::Counter { at, value }, attrs);
    }

    /// Adds `delta` to the named registry counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .counter_add(name, delta);
    }

    /// Sets the named registry gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .gauge_set(name, value);
    }

    /// Raises the named registry gauge to `value` if higher.
    #[inline]
    pub fn gauge_max(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .gauge_max(name, value);
    }

    /// Records one observation into the named histogram.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .metrics
            .lock()
            .expect("metrics lock")
            .observe(name, value);
    }

    /// Events recorded so far (copied, in emission order). Prefer
    /// [`ObsSink::with_events`] when a borrow suffices — this clones
    /// the entire buffer, O(events).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("events lock").clone(),
            None => Vec::new(),
        }
    }

    /// Runs `f` over a borrow of the retained events (in emission
    /// order) without copying the buffer. The events lock is held for
    /// the duration of `f`; recording from within `f` deadlocks, so
    /// use this for read-only analysis and export. On a disabled sink
    /// `f` sees an empty slice.
    pub fn with_events<R>(&self, f: impl FnOnce(&[Event]) -> R) -> R {
        match &self.inner {
            Some(inner) => f(&inner.events.lock().expect("events lock")),
            None => f(&[]),
        }
    }

    /// Removes and returns everything recorded so far.
    #[must_use]
    pub fn take_events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.events.lock().expect("events lock")),
            None => Vec::new(),
        }
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.events.lock().expect("events lock").len(),
            None => 0,
        }
    }

    /// True when nothing has been recorded (always true when disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the metrics registry (empty when disabled).
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        match &self.inner {
            Some(inner) => inner.metrics.lock().expect("metrics lock").clone(),
            None => MetricsRegistry::new(),
        }
    }
}

impl Inner {
    /// Routes one emission: a streaming sink folds non-retained events
    /// straight from the caller's attribute slice (no allocation, no
    /// `Event` built); retained events are materialized and buffered.
    fn record(
        &self,
        track: u32,
        name: &'static str,
        cat: &'static str,
        kind: EventKind,
        attrs: &[(&'static str, AttrValue)],
    ) {
        if let Some(stream) = &self.stream {
            let mut agg = stream.lock().expect("stream lock");
            if !agg.retains(track, &kind) {
                agg.fold(track, name, &kind, attrs);
                return;
            }
            agg.note_retained();
        }
        self.push(Event {
            name,
            cat,
            track,
            kind,
            attrs: attrs.to_vec(),
            seq: 0,
        });
    }

    fn push(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.events.lock().expect("events lock").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let s = ObsSink::disabled();
        assert!(!s.is_enabled());
        s.span(0, "a", "t", VTime::ZERO, VDuration::ZERO, &[]);
        s.instant(0, "b", "t", VTime::ZERO, &[]);
        s.counter_add("c", 1);
        s.observe("h", 2);
        assert!(s.is_empty());
        assert_eq!(s.metrics().counter("c"), 0);
    }

    #[test]
    fn enabled_sink_records_in_sequence() {
        let s = ObsSink::enabled();
        assert!(s.is_enabled());
        s.span(0, "a", "t", VTime::ZERO, VDuration::from_secs(1.0), &[]);
        s.instant(
            1,
            "b",
            "t",
            VTime::from_secs(0.5),
            &[("n", AttrValue::U64(3))],
        );
        let events = s.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].attr_u64("n"), Some(3));
        assert_eq!(s.take_events().len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn clones_share_buffers() {
        let s = ObsSink::enabled();
        let t = s.clone();
        t.counter_add("c", 5);
        t.instant(0, "x", "t", VTime::ZERO, &[]);
        assert_eq!(s.metrics().counter("c"), 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn streaming_sink_folds_bulk_and_keeps_exemplars() {
        use crate::span::ENGINE_TRACK;
        let s = ObsSink::streaming(StreamConfig {
            top_k: 4,
            exemplar_stride: 16,
            exemplar_max: 2,
        });
        assert!(s.is_streaming() && s.is_enabled());
        for rank in 0..64u32 {
            s.span(
                rank,
                "prologue",
                "engine",
                VTime::from_secs(1.0),
                VDuration::from_secs(f64::from(rank) * 1e-3),
                &[("bytes", AttrValue::U64(u64::from(rank)))],
            );
        }
        s.span(
            ENGINE_TRACK,
            "round",
            "engine",
            VTime::from_secs(1.0),
            VDuration::from_secs(0.5),
            &[],
        );
        s.counter_sample(
            ENGINE_TRACK,
            "mem.peak_reserved",
            "mem",
            VTime::from_secs(2.0),
            7.0,
            &[],
        );
        // Retained: exemplar ranks 0 and 16, plus the engine span.
        assert_eq!(s.len(), 3);
        let agg = s.stream_stats().expect("streaming aggregate");
        assert_eq!(agg.retained_events, 3);
        assert_eq!(agg.folded_events, 63); // 62 bulk prologues + 1 counter
        let (name, _, cell) = agg
            .cells()
            .find(|(name, _, _)| *name == "prologue")
            .expect("prologue cell");
        assert_eq!(name, "prologue");
        assert_eq!(cell.count, 62);
        // Straggler list: largest durations among the folded ranks.
        assert_eq!(cell.dur_nanos.top[0], (63_000_000, 63));
        // Buffered sinks report no aggregate.
        assert!(ObsSink::enabled().stream_stats().is_none());
        assert!(!ObsSink::enabled().is_streaming());
    }

    #[test]
    fn with_events_borrows_without_copying() {
        let s = ObsSink::enabled();
        s.instant(0, "x", "t", VTime::ZERO, &[]);
        let n = s.with_events(|evs| {
            assert_eq!(evs[0].name, "x");
            evs.len()
        });
        assert_eq!(n, 1);
        assert_eq!(ObsSink::disabled().with_events(<[Event]>::len), 0);
    }

    #[test]
    fn concurrent_emission_is_safe_and_complete() {
        let s = ObsSink::enabled();
        std::thread::scope(|scope| {
            for rank in 0..8u32 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        s.instant(rank, "tick", "t", VTime::from_secs(i as f64), &[]);
                        s.counter_add("ticks", 1);
                    }
                });
            }
        });
        assert_eq!(s.len(), 800);
        assert_eq!(s.metrics().counter("ticks"), 800);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = s.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 800);
    }
}
