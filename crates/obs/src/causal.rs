//! Message-level happens-before tracing: cross-rank critical paths,
//! blame chains, and what-if projection.
//!
//! PR 5's critical path ([`crate::analyze::CriticalPath`]) tiles the
//! *engine-track* op span by phase — it can say "shuffle dominated" but
//! not *which* rank's send actually blocked *which* aggregator. This
//! module follows real message causality instead: the network engine
//! reports every send and every delivery settlement through the
//! [`CausalSink`] hook, and an online longest-path DP folds them into a
//! **per-rank frontier** at record time.
//!
//! ## The online DP
//!
//! Each rank's frontier holds the start of its currently-open local
//! "work" segment plus an `Arc` link to the chain node that last bound
//! its clock. On `on_send` the sender's open segment and chain head are
//! snapshotted into an in-flight table keyed `(src, per-sender seq)` —
//! nothing is allocated beyond the table entry. On `on_delivery` the
//! snapshot is popped; only when the message **bound** the receiver's
//! clock (`after > before`) is one immutable `ChainNode` allocated:
//! sender-side work `[work_from, work_to]` plus the in-flight edge
//! `[work_to, after]`, linked to the sender's snapshotted chain. The
//! receiver's frontier then points at the new node and its open segment
//! restarts at `after`. An early message (no bind) allocates nothing.
//!
//! Memory is O(ranks + path): per-rank state is constant-size, the
//! in-flight table drains on receipt (the engine asserts every envelope
//! is received), and chain nodes are `Arc`-shared — after a settle
//! broadcast every rank's chain aliases the root's suffix, so the live
//! node set collapses to roughly one path. This makes the fold
//! compatible with [`crate::ObsSink::streaming`] at 100k ranks: in
//! streaming mode no per-edge record is retained at all.
//!
//! ## Determinism
//!
//! Sequence numbers are **per-sender** (a global counter would be
//! assigned in wall-clock order under the threaded executor). Every
//! engine receive is source-ordered (`recv(src, tag)`), so each rank
//! settles its deliveries in program order, and a chain node's
//! predecessor comes from the *sender's* snapshot — never from the
//! receiver's racy local history. The frontier is therefore a pure
//! function of virtual clocks and program order, bit-identical across
//! `ExecutorKind::{Threads,Event}` — the same canonical-order argument
//! as PR 9's streaming cells.
//!
//! ## Blame chains and what-if
//!
//! At each op end the engine calls [`CausalAgg::op_end`] with the op
//! window `[t0, end]`; walking the root frontier backwards and clamping
//! at `t0` materializes the [`BlameChain`]: the actual
//! rank → rank → storage sequence of segments whose joints are
//! **bit-equal** and whose total is the single subtraction `end - t0` —
//! bit-identical to `IoReport.elapsed` and the PR 5 op span. What-if
//! projection ([`what_ifs`]) re-weights segment classes (optionally
//! refined by PR 5 phase tiling) and reports the projected
//! speed-of-light durations; the identity re-weighting reproduces the
//! baseline bit-exactly.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mccio_sim::causal::CausalSink;
use mccio_sim::hostprof::{self, HostPhase};
use mccio_sim::time::{VDuration, VTime};

use crate::analyze::{CriticalPath, Phase};

/// What a blame-chain segment's virtual time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegClass {
    /// Local work on one rank (compute, storage driving, local copies —
    /// everything between two clock bindings).
    Work,
    /// In-flight time of a control-plane message that bound the
    /// receiver's clock (barrier/settle causality, injected ctl delay).
    SyncWait,
    /// In-flight time of a costed data-plane message that bound the
    /// receiver's clock (modeled point-to-point transfer).
    Transfer,
}

impl SegClass {
    /// Stable lowercase display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SegClass::Work => "work",
            SegClass::SyncWait => "sync-wait",
            SegClass::Transfer => "transfer",
        }
    }
}

/// One contiguous slice of a blame chain, on one rank's timeline.
/// Segments carry absolute virtual endpoints so tiling can be asserted
/// to the bit: each segment's `to` is bit-equal to its successor's
/// `from`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlameSegment {
    /// The rank whose timeline this slice lies on (for [`SegClass::SyncWait`]
    /// / [`SegClass::Transfer`] edges: the *receiving* rank).
    pub rank: u32,
    /// What the time was spent on.
    pub class: SegClass,
    /// Absolute virtual start.
    pub from: VTime,
    /// Absolute virtual end.
    pub to: VTime,
}

impl BlameSegment {
    /// The slice's virtual duration.
    #[must_use]
    pub fn dur(&self) -> VDuration {
        self.to - self.from
    }
}

/// The actual cross-rank critical path of one collective operation: the
/// rank → rank → storage sequence of segments tiling `[start, end]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameChain {
    /// `"write"` or `"read"`.
    pub dir: &'static str,
    /// The op's virtual start (`t0`).
    pub start: VTime,
    /// The op's virtual end (the root clock when the op span closed).
    pub end: VTime,
    /// The path in virtual-time order; joints are bit-equal and
    /// zero-length slices are elided.
    pub segments: Vec<BlameSegment>,
}

impl BlameChain {
    /// Total chain duration — the single subtraction `end - start`,
    /// bit-identical to the op span duration and `IoReport.elapsed`
    /// (never re-derived from a segment sum).
    #[must_use]
    pub fn total(&self) -> VDuration {
        self.end - self.start
    }

    /// Seconds the chain spent waiting on messages in flight
    /// ([`SegClass::SyncWait`] + [`SegClass::Transfer`]).
    #[must_use]
    pub fn wait_secs(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.class != SegClass::Work)
            .map(|s| s.dur().as_secs())
            .sum()
    }

    /// Seconds the chain spent in local work.
    #[must_use]
    pub fn work_secs(&self) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.class == SegClass::Work)
            .map(|s| s.dur().as_secs())
            .sum()
    }

    /// Number of cross-rank hops (message edges) on the chain.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| s.class != SegClass::Work)
            .count()
    }

    /// Distinct ranks the chain visits, in first-visit order.
    #[must_use]
    pub fn ranks(&self) -> Vec<u32> {
        let mut seen = Vec::new();
        for s in &self.segments {
            if !seen.contains(&s.rank) {
                seen.push(s.rank);
            }
        }
        seen
    }

    /// Checks the bit-tiling invariant: the first segment starts at
    /// `start` to the bit, every joint is bit-equal, every segment has
    /// non-negative length, and the last segment ends at `end` to the
    /// bit.
    ///
    /// # Errors
    /// Describes the first violated joint.
    pub fn verify_tiling(&self) -> Result<(), String> {
        let bits = |t: VTime| t.as_secs().to_bits();
        let mut cursor = self.start;
        for (i, s) in self.segments.iter().enumerate() {
            if bits(s.from) != bits(cursor) {
                return Err(format!(
                    "segment {i} starts at {} but the chain stands at {} (joint not bit-equal)",
                    s.from.as_secs(),
                    cursor.as_secs()
                ));
            }
            if s.to.as_secs() < s.from.as_secs() {
                return Err(format!("segment {i} has negative length"));
            }
            cursor = s.to;
        }
        if bits(cursor) != bits(self.end) {
            return Err(format!(
                "chain ends at {} but the op ends at {} (tail not bit-equal)",
                cursor.as_secs(),
                self.end.as_secs()
            ));
        }
        Ok(())
    }
}

/// One recorded message edge, retained on buffered (non-streaming)
/// sinks for Chrome flow-event export. `(src, seq)` is the edge's
/// identity; the deterministic flow id is `src · 2³² + seq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CausalEdge {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Per-sender sequence number (≥ 1).
    pub seq: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// True for data-plane (costed) messages.
    pub costed: bool,
    /// Sender's clock at the send call.
    pub depart: VTime,
    /// Receiver's clock after the settle.
    pub arrive: VTime,
}

impl CausalEdge {
    /// The deterministic Chrome flow id: `src · 2³² + seq`.
    #[must_use]
    pub fn flow_id(&self) -> u64 {
        (u64::from(self.src) << 32) | self.seq
    }
}

/// One frozen link of a rank's happens-before chain: the sender-side
/// work segment `[work_from, work_to]` followed by the in-flight edge
/// `[work_to, arrive]` that bound the receiver's clock.
#[derive(Debug)]
struct ChainNode {
    /// The sender's chain before its work segment (`None` at simulation
    /// start).
    pred: Option<Arc<ChainNode>>,
    src: u32,
    dst: u32,
    costed: bool,
    work_from: VTime,
    work_to: VTime,
    arrive: VTime,
}

impl Drop for ChainNode {
    /// Iterative predecessor teardown: a chain can be hundreds of
    /// thousands of links long, so the default recursive drop would
    /// overflow the stack. Links still shared (another rank's frontier
    /// aliases the suffix) stop the walk.
    fn drop(&mut self) {
        let mut next = self.pred.take();
        while let Some(node) = next {
            match Arc::try_unwrap(node) {
                Ok(mut n) => next = n.pred.take(),
                Err(_) => break,
            }
        }
    }
}

/// One rank's DP frontier: the start of its open local-work segment and
/// the chain link that last bound its clock. `seg_start` and `head` are
/// always updated together, so `seg_start > 0 ⟹ head.is_some()`.
#[derive(Debug, Clone, Default)]
struct RankState {
    seg_start: VTime,
    head: Option<Arc<ChainNode>>,
    next_seq: u64,
}

/// The sender-side snapshot taken at `on_send`, consumed at
/// `on_delivery`.
#[derive(Debug)]
struct InFlight {
    head: Option<Arc<ChainNode>>,
    work_from: VTime,
    work_to: VTime,
    bytes: u64,
    costed: bool,
}

/// The online causal aggregate: implements the engine's
/// [`CausalSink`] hook and materializes [`BlameChain`]s at op ends.
/// See the module docs for the fold and its memory bound.
#[derive(Debug)]
pub struct CausalAgg {
    ranks: Mutex<HashMap<u32, RankState>>,
    inflight: Mutex<HashMap<(u32, u64), InFlight>>,
    chains: Mutex<Vec<BlameChain>>,
    /// Per-edge records for Chrome flow export; `None` in streaming
    /// mode, where causal memory must stay rank-independent.
    edges: Option<Mutex<Vec<CausalEdge>>>,
    /// Chain nodes allocated so far (cumulative, monotone).
    nodes_created: AtomicU64,
    /// Deliveries that arrived early and bound nothing.
    slack_deliveries: AtomicU64,
}

impl CausalAgg {
    /// Builds an aggregate; `retain_edges` keeps one [`CausalEdge`] per
    /// message for flow export (buffered sinks only — streaming sinks
    /// pass `false` to keep memory independent of message count).
    #[must_use]
    pub fn new(retain_edges: bool) -> CausalAgg {
        CausalAgg {
            ranks: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            chains: Mutex::new(Vec::new()),
            edges: retain_edges.then(|| Mutex::new(Vec::new())),
            nodes_created: AtomicU64::new(0),
            slack_deliveries: AtomicU64::new(0),
        }
    }

    /// Closes the op window `[t0, end]` observed at `root` (the rank
    /// that prices the op span): walks the root frontier backwards,
    /// clamps at `t0`, and records the resulting [`BlameChain`].
    pub fn op_end(&self, root: u32, t0: VTime, end: VTime, dir: &'static str) {
        let (seg_start, mut node) = {
            let ranks = self.ranks.lock().expect("causal ranks lock");
            match ranks.get(&root) {
                Some(st) => (st.seg_start, st.head.clone()),
                None => (VTime::ZERO, None),
            }
        };
        let clamp = |t: VTime| if t.as_secs() < t0.as_secs() { t0 } else { t };
        // Built back-to-front, reversed at the end. Zero-length slices
        // are elided; elision preserves bit-equal joints because a
        // zero-length slice's endpoints are the same bits.
        let mut rev: Vec<BlameSegment> = Vec::new();
        let mut push = |rank: u32, class: SegClass, from: VTime, to: VTime| {
            if from.as_secs().to_bits() != to.as_secs().to_bits() {
                rev.push(BlameSegment {
                    rank,
                    class,
                    from,
                    to,
                });
            }
        };
        let mut cursor = clamp(seg_start);
        push(root, SegClass::Work, cursor, end);
        while cursor.as_secs() > t0.as_secs() {
            let n = node
                .expect("causal chain must reach t0: clocks above zero only bind through messages");
            // The frontier stands exactly where the binding arrived:
            // `seg_start`/`work_from` are set to `arrive` at bind time.
            debug_assert_eq!(
                clamp(n.arrive).as_secs().to_bits(),
                cursor.as_secs().to_bits(),
                "chain walk must stand at the binding arrival"
            );
            let class = if n.costed {
                SegClass::Transfer
            } else {
                SegClass::SyncWait
            };
            let edge_from = clamp(n.work_to);
            push(n.dst, class, edge_from, cursor);
            cursor = edge_from;
            if cursor.as_secs() > t0.as_secs() {
                let work_from = clamp(n.work_from);
                push(n.src, SegClass::Work, work_from, cursor);
                cursor = work_from;
            }
            node = n.pred.clone();
        }
        rev.reverse();
        let chain = BlameChain {
            dir,
            start: t0,
            end,
            segments: rev,
        };
        self.chains.lock().expect("causal chains lock").push(chain);
    }

    /// The blame chains recorded so far, in op order.
    #[must_use]
    pub fn chains(&self) -> Vec<BlameChain> {
        self.chains.lock().expect("causal chains lock").clone()
    }

    /// The retained message edges sorted by `(src, seq)` — a
    /// deterministic order regardless of wall-clock delivery
    /// interleaving. Empty in streaming mode.
    #[must_use]
    pub fn edges(&self) -> Vec<CausalEdge> {
        let Some(edges) = &self.edges else {
            return Vec::new();
        };
        let mut out = edges.lock().expect("causal edges lock").clone();
        out.sort_by_key(|e| (e.src, e.seq));
        out
    }

    /// Chain nodes allocated so far (cumulative).
    #[must_use]
    pub fn nodes_created(&self) -> u64 {
        self.nodes_created.load(Ordering::Relaxed)
    }

    /// Deliveries that arrived early and bound nothing.
    #[must_use]
    pub fn slack_deliveries(&self) -> u64 {
        self.slack_deliveries.load(Ordering::Relaxed)
    }

    /// Messages currently in flight (sent, not yet settled).
    #[must_use]
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("causal inflight lock").len()
    }

    /// Chain nodes currently reachable from any rank frontier or
    /// in-flight snapshot — the DP's live memory, O(ranks + path) by
    /// construction. Counted by pointer identity (shared suffixes count
    /// once); O(live) walk, for tests and memory gates, not hot paths.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        let mut seen: HashSet<*const ChainNode> = HashSet::new();
        let mut walk = |mut head: Option<&Arc<ChainNode>>| {
            while let Some(n) = head {
                if !seen.insert(Arc::as_ptr(n)) {
                    break;
                }
                head = n.pred.as_ref();
            }
        };
        let ranks = self.ranks.lock().expect("causal ranks lock");
        for st in ranks.values() {
            walk(st.head.as_ref());
        }
        drop(ranks);
        let inflight = self.inflight.lock().expect("causal inflight lock");
        for snap in inflight.values() {
            walk(snap.head.as_ref());
        }
        seen.len()
    }
}

impl CausalSink for CausalAgg {
    fn on_send(&self, src: usize, _dst: usize, clock: VTime, bytes: u64, costed: bool) -> u64 {
        let src = src as u32;
        let (seq, snap) = {
            let mut ranks = self.ranks.lock().expect("causal ranks lock");
            let st = ranks.entry(src).or_default();
            st.next_seq += 1;
            (
                st.next_seq,
                InFlight {
                    head: st.head.clone(),
                    work_from: st.seg_start,
                    work_to: clock,
                    bytes,
                    costed,
                },
            )
        };
        self.inflight
            .lock()
            .expect("causal inflight lock")
            .insert((src, seq), snap);
        seq
    }

    fn on_delivery(&self, src: usize, seq: u64, dst: usize, before: VTime, after: VTime) {
        let _t = hostprof::timer(HostPhase::CausalFold);
        let src = src as u32;
        let dst = dst as u32;
        let Some(snap) = self
            .inflight
            .lock()
            .expect("causal inflight lock")
            .remove(&(src, seq))
        else {
            // Sent before this sink was installed on the world; no edge.
            return;
        };
        if let Some(edges) = &self.edges {
            edges.lock().expect("causal edges lock").push(CausalEdge {
                src,
                dst,
                seq,
                bytes: snap.bytes,
                costed: snap.costed,
                depart: snap.work_to,
                arrive: after,
            });
        }
        if after.as_secs() > before.as_secs() {
            let node = Arc::new(ChainNode {
                pred: snap.head,
                src,
                dst,
                costed: snap.costed,
                work_from: snap.work_from,
                work_to: snap.work_to,
                arrive: after,
            });
            self.nodes_created.fetch_add(1, Ordering::Relaxed);
            let mut ranks = self.ranks.lock().expect("causal ranks lock");
            let st = ranks.entry(dst).or_default();
            st.head = Some(node);
            st.seg_start = after;
        } else {
            self.slack_deliveries.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A blame-chain slice refined against the PR 5 phase tiling: the
/// intersection of one [`BlameSegment`] with one engine phase segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinedSegment {
    /// The rank whose timeline the slice lies on.
    pub rank: u32,
    /// The causal class of the parent blame segment.
    pub class: SegClass,
    /// The engine phase covering this slice, when a PR 5 critical path
    /// was available to refine against.
    pub phase: Option<Phase>,
    /// Absolute virtual start.
    pub from: VTime,
    /// Absolute virtual end.
    pub to: VTime,
}

impl RefinedSegment {
    /// The slice's duration in seconds.
    #[must_use]
    pub fn secs(&self) -> f64 {
        (self.to - self.from).as_secs()
    }
}

/// Splits each blame segment at the PR 5 phase-tiling boundaries and
/// labels each piece with the phase covering its midpoint. Without a
/// path the chain passes through unrefined (`phase: None`).
#[must_use]
pub fn refine(chain: &BlameChain, path: Option<&CriticalPath>) -> Vec<RefinedSegment> {
    let Some(path) = path else {
        return chain
            .segments
            .iter()
            .map(|s| RefinedSegment {
                rank: s.rank,
                class: s.class,
                phase: None,
                from: s.from,
                to: s.to,
            })
            .collect();
    };
    // Phase windows in virtual-time order: (start, end, phase).
    let windows: Vec<(f64, f64, Phase)> = path
        .segments
        .iter()
        .map(|s| (s.start.as_secs(), (s.start + s.dur).as_secs(), s.phase))
        .collect();
    let phase_at = |t: f64| -> Option<Phase> {
        windows
            .iter()
            .find(|&&(a, b, _)| t >= a && t < b)
            .map(|&(_, _, p)| p)
    };
    let mut out = Vec::new();
    for s in &chain.segments {
        let (a, b) = (s.from.as_secs(), s.to.as_secs());
        let mut cuts: Vec<f64> = windows
            .iter()
            .flat_map(|&(w0, w1, _)| [w0, w1])
            .filter(|&c| c > a && c < b)
            .collect();
        cuts.sort_by(|x, y| x.partial_cmp(y).expect("virtual times are finite"));
        cuts.dedup();
        let mut lo = s.from;
        for c in cuts.into_iter().map(VTime::from_secs).chain([s.to]) {
            if c.as_secs() > lo.as_secs() {
                let mid = (lo.as_secs() + c.as_secs()) / 2.0;
                out.push(RefinedSegment {
                    rank: s.rank,
                    class: s.class,
                    phase: phase_at(mid),
                    from: lo,
                    to: c,
                });
                lo = c;
            }
        }
    }
    out
}

/// One what-if projection: the chain re-priced under a re-weighting of
/// its segment classes.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Scenario name (`"zero-network"`, `"infinite-pfs"`,
    /// `"uniform-memory"`).
    pub name: &'static str,
    /// Projected chain seconds under the scenario.
    pub projected_secs: f64,
    /// `total / projected` (∞ when the scenario removes the whole
    /// chain).
    pub speedup: f64,
}

/// Re-prices the chain under `weight`: each refined slice's duration is
/// scaled by `weight(class, phase) ∈ [0, 1]` and the projection is
/// `total − Σ (1 − w)·dur`. The identity weighting (`w ≡ 1`) subtracts
/// an exact `+0.0` per slice and therefore reproduces the baseline
/// total **bit-exactly** — the no-op re-weight invariant the tests pin.
#[must_use]
pub fn project(
    chain: &BlameChain,
    refined: &[RefinedSegment],
    weight: impl Fn(SegClass, Option<Phase>) -> f64,
) -> f64 {
    let removed: f64 = refined
        .iter()
        .map(|s| (1.0 - weight(s.class, s.phase)) * s.secs())
        .sum();
    chain.total().as_secs() - removed
}

/// The standard speed-of-light scenarios: zero network cost (transfer
/// and sync-wait edges free), infinite PFS bandwidth (storage-phase
/// chain time free), and uniform memory ceilings (backoff-phase chain
/// time free). Phase-gated scenarios need a PR 5 `path` to refine
/// against; without one they degrade to no-ops.
#[must_use]
pub fn what_ifs(chain: &BlameChain, path: Option<&CriticalPath>) -> Vec<WhatIf> {
    let refined = refine(chain, path);
    let total = chain.total().as_secs();
    type ScenarioWeight = fn(SegClass, Option<Phase>) -> f64;
    let scenarios: [(&'static str, ScenarioWeight); 3] = [
        (
            "zero-network",
            |c, _| {
                if c == SegClass::Work {
                    1.0
                } else {
                    0.0
                }
            },
        ),
        ("infinite-pfs", |_, p| {
            if p == Some(Phase::Storage) {
                0.0
            } else {
                1.0
            }
        }),
        ("uniform-memory", |_, p| {
            if p == Some(Phase::Backoff) {
                0.0
            } else {
                1.0
            }
        }),
    ];
    scenarios
        .into_iter()
        .map(|(name, w)| {
            let projected = project(chain, &refined, w);
            WhatIf {
                name,
                projected_secs: projected,
                speedup: if projected > 0.0 {
                    total / projected
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

/// One op's causal analysis: its blame chain, the wait-vs-work split,
/// and the standard what-if projections.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalOp {
    /// The cross-rank blame chain.
    pub chain: BlameChain,
    /// Seconds on the chain spent waiting on in-flight messages.
    pub wait_secs: f64,
    /// Seconds on the chain spent in local work.
    pub work_secs: f64,
    /// Standard what-if projections ([`what_ifs`]).
    pub what_ifs: Vec<WhatIf>,
}

/// The causal layer of a [`crate::analyze::TraceAnalysis`]: one
/// [`CausalOp`] per collective operation, in op order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CausalAnalysis {
    /// Per-op causal analyses.
    pub ops: Vec<CausalOp>,
}

impl CausalAnalysis {
    /// Pairs recorded chains with the PR 5 critical paths of the same
    /// run (both are in op order; a chain is refined against the path
    /// whose start matches it to the bit).
    #[must_use]
    pub fn from_chains(chains: &[BlameChain], paths: &[CriticalPath]) -> CausalAnalysis {
        let ops = chains
            .iter()
            .enumerate()
            .map(|(i, chain)| {
                let path = paths
                    .get(i)
                    .filter(|p| p.start.as_secs().to_bits() == chain.start.as_secs().to_bits());
                CausalOp {
                    chain: chain.clone(),
                    wait_secs: chain.wait_secs(),
                    work_secs: chain.work_secs(),
                    what_ifs: what_ifs(chain, path),
                }
            })
            .collect();
        CausalAnalysis { ops }
    }

    /// True when no chains were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VTime {
        VTime::from_secs(s)
    }

    /// Drives the sink hooks directly: rank 0 works until 1.0 and
    /// sends; rank 1 (idle at 0.2) is bound to 1.5 by the transfer.
    #[test]
    fn binding_delivery_freezes_sender_work_and_edge() {
        let agg = CausalAgg::new(true);
        let seq = agg.on_send(0, 1, t(1.0), 64, true);
        assert_eq!(seq, 1, "per-sender sequence starts at 1");
        agg.on_delivery(0, seq, 1, t(0.2), t(1.5));
        agg.op_end(1, VTime::ZERO, t(2.0), "write");
        let chains = agg.chains();
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        c.verify_tiling().expect("bit tiling");
        assert_eq!(c.total().as_secs(), 2.0);
        // work[0, 1.0] on rank 0 → transfer[1.0, 1.5] on rank 1 →
        // work[1.5, 2.0] on rank 1.
        assert_eq!(c.segments.len(), 3);
        assert_eq!(c.segments[0].rank, 0);
        assert_eq!(c.segments[0].class, SegClass::Work);
        assert_eq!(c.segments[1].class, SegClass::Transfer);
        assert_eq!(c.segments[1].dur().as_secs(), 0.5);
        assert_eq!(c.segments[2].rank, 1);
        assert_eq!(c.wait_secs(), 0.5);
        assert_eq!(c.work_secs(), 1.5);
        assert_eq!(c.hops(), 1);
        assert_eq!(agg.edges().len(), 1);
        assert_eq!(agg.nodes_created(), 1);
    }

    #[test]
    fn early_delivery_is_slack_not_an_edge() {
        let agg = CausalAgg::new(true);
        let seq = agg.on_send(0, 1, t(0.5), 8, false);
        // Receiver already past the arrival: no bind.
        agg.on_delivery(0, seq, 1, t(0.9), t(0.9));
        assert_eq!(agg.nodes_created(), 0);
        assert_eq!(agg.slack_deliveries(), 1);
        assert_eq!(agg.inflight_len(), 0, "snapshot popped either way");
        agg.op_end(1, VTime::ZERO, t(0.9), "write");
        let c = &agg.chains()[0];
        c.verify_tiling().expect("bit tiling");
        assert_eq!(c.segments.len(), 1, "pure local work");
        assert_eq!(c.hops(), 0);
    }

    #[test]
    fn clamping_truncates_history_before_t0() {
        let agg = CausalAgg::new(false);
        let s1 = agg.on_send(0, 1, t(1.0), 4, true);
        agg.on_delivery(0, s1, 1, t(0.0), t(1.4));
        // Second op window starts at 2.0; rank 1's chain reaches back
        // through the 1.4 bind, which is clamped away entirely.
        agg.op_end(1, t(2.0), t(3.0), "read");
        let c = &agg.chains()[0];
        c.verify_tiling().expect("bit tiling");
        assert_eq!(c.segments.len(), 1);
        assert_eq!(c.segments[0].from.as_secs(), 2.0);
        assert_eq!(c.segments[0].to.as_secs(), 3.0);
        assert!(agg.edges().is_empty(), "streaming mode retains no edges");
    }

    #[test]
    fn deep_chains_drop_iteratively() {
        // 200k links would overflow the stack under recursive drop.
        let agg = CausalAgg::new(false);
        let mut clock = 0.0;
        for i in 0..200_000u64 {
            let (src, dst) = ((i % 2) as usize, ((i + 1) % 2) as usize);
            let seq = agg.on_send(src, dst, t(clock + 1e-6), 1, false);
            clock += 2e-6;
            agg.on_delivery(src, seq, dst, t(clock - 1e-6), t(clock));
        }
        assert_eq!(agg.nodes_created(), 200_000);
        assert!(agg.live_nodes() <= 200_000);
        drop(agg); // must not overflow
    }

    #[test]
    fn live_nodes_collapse_after_a_broadcast_bind() {
        let agg = CausalAgg::new(false);
        // Rank 0 binds ranks 1..=8 at the same settle: every frontier
        // shares rank 0's (empty) chain plus one private node.
        for dst in 1..=8usize {
            let seq = agg.on_send(0, dst, t(1.0), 0, false);
            agg.on_delivery(0, seq, dst, t(0.1), t(1.0 + dst as f64 * 1e-9));
        }
        assert_eq!(agg.live_nodes(), 8, "one private node per bound rank");
    }

    #[test]
    fn identity_reweight_reproduces_the_total_bit_exactly() {
        let agg = CausalAgg::new(false);
        let s = agg.on_send(0, 1, t(0.3), 16, true);
        agg.on_delivery(0, s, 1, t(0.1), t(0.7));
        agg.op_end(1, VTime::ZERO, t(1.1), "write");
        let c = &agg.chains()[0];
        let refined = refine(c, None);
        let projected = project(c, &refined, |_, _| 1.0);
        assert_eq!(
            projected.to_bits(),
            c.total().as_secs().to_bits(),
            "no-op re-weight must be bit-identical to the baseline"
        );
        let zero_net = project(
            c,
            &refined,
            |class, _| {
                if class == SegClass::Work {
                    1.0
                } else {
                    0.0
                }
            },
        );
        assert!((zero_net - (c.total().as_secs() - 0.4)).abs() < 1e-12);
    }

    #[test]
    fn what_ifs_without_a_path_gate_phase_scenarios_off() {
        let agg = CausalAgg::new(false);
        let s = agg.on_send(0, 1, t(0.3), 16, true);
        agg.on_delivery(0, s, 1, t(0.1), t(0.7));
        agg.op_end(1, VTime::ZERO, t(1.0), "write");
        let c = &agg.chains()[0];
        let wi = what_ifs(c, None);
        assert_eq!(wi.len(), 3);
        let by_name = |n: &str| wi.iter().find(|w| w.name == n).unwrap();
        assert!(by_name("zero-network").projected_secs < c.total().as_secs());
        // Phase-gated scenarios degrade to no-ops without a path.
        assert_eq!(
            by_name("infinite-pfs").projected_secs.to_bits(),
            c.total().as_secs().to_bits()
        );
        assert_eq!(by_name("uniform-memory").speedup, 1.0);
    }
}
