//! The event model: spans, instants, and counter samples on
//! virtual-time tracks.
//!
//! A *track* is a horizontal timeline in the trace viewer. The engine
//! prices every round at the world root, so phase durations (sync,
//! shuffle, storage, assembly, backoff) only exist there — those spans
//! land on [`ENGINE_TRACK`]. Per-rank facts (which windows a rank
//! stored, what it retried) land on the rank's own track, numbered by
//! rank.
//!
//! Spans are recorded *complete* — virtual start plus duration — rather
//! than as begin/end pairs, because the simulator always knows both ends
//! when the fact becomes true (virtual time is priced, not observed).
//! Nesting is by containment: a span that starts no earlier and ends no
//! later than another on the same track renders inside it, which is
//! exactly Chrome's `"X"` (complete event) semantics.

use mccio_sim::time::{VDuration, VTime};

/// The track root-priced engine phases are recorded on. Rank tracks use
/// the rank number; this sits far above any plausible rank count.
pub const ENGINE_TRACK: u32 = 1_000_000;

/// The five priced round phases in pricing order — the names the engine
/// gives the child spans tiling each `"round"` span, and the order the
/// analyzer walks them back in.
pub const PHASE_NAMES: [&str; 5] = ["sync", "shuffle", "storage", "assembly", "backoff"];

/// The crash-recovery event family the engine emits when a fault plan
/// schedules rank crashes. Grouped here so trace consumers (and the
/// chaos sweep) key off one vocabulary:
///
/// * [`CRASH_DETECTED`] — instant + counter: a receive deadline expired
///   and a rank was declared dead.
/// * [`REELECTION`] — instant + counter: a replacement aggregator was
///   elected from the survivor set for one domain.
/// * [`ROUNDS_REPLAYED`] — counter: a round's shuffle payloads were
///   re-sent against the re-planned schedule.
/// * [`INTEGRITY_VERIFIED`] — counter: end-to-end payload checksums
///   verified at assembly.
pub const CRASH_DETECTED: &str = "crash.detected";
/// See [`CRASH_DETECTED`].
pub const REELECTION: &str = "reelection";
/// See [`CRASH_DETECTED`].
pub const ROUNDS_REPLAYED: &str = "rounds.replayed";
/// See [`CRASH_DETECTED`].
pub const INTEGRITY_VERIFIED: &str = "integrity.verified";

/// One structured attribute value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// An unsigned count or byte size.
    U64(u64),
    /// A floating-point quantity (seconds, factors).
    F64(f64),
    /// A static label (direction, strategy name, event taxonomy).
    Str(&'static str),
}

/// What kind of mark an [`Event`] places on its track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A complete span: virtual start and duration.
    Span {
        /// Virtual start of the span.
        start: VTime,
        /// Priced virtual duration.
        dur: VDuration,
    },
    /// A zero-duration mark (a fault fired, a rung was descended).
    Instant {
        /// Virtual time of the mark.
        at: VTime,
    },
    /// A sampled counter value (reserved bytes, pool occupancy).
    Counter {
        /// Virtual time of the sample.
        at: VTime,
        /// The sampled value.
        value: f64,
    },
}

impl EventKind {
    /// The virtual time the event begins (spans) or occurs (marks).
    #[must_use]
    pub fn at(&self) -> VTime {
        match *self {
            EventKind::Span { start, .. } => start,
            EventKind::Instant { at } | EventKind::Counter { at, .. } => at,
        }
    }
}

/// One recorded observability event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name within the taxonomy (`"op"`, `"round"`, `"shuffle"`,
    /// `"storage.window"`, `"ladder.rung"`, `"fault.mem"`, …).
    pub name: &'static str,
    /// Category, the coarse grouping trace viewers filter by
    /// (`"engine"`, `"ladder"`, `"fault"`, `"storage"`, `"mem"`).
    pub cat: &'static str,
    /// The track the event renders on: a rank number or
    /// [`ENGINE_TRACK`].
    pub track: u32,
    /// The mark this event places on the track.
    pub kind: EventKind,
    /// Structured attributes (`args` in the Chrome trace).
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Emission sequence number, unique per sink: ties on `(track,
    /// start)` sort in emission order, which puts parents (emitted
    /// first) before their children.
    pub seq: u64,
}

impl Event {
    /// Looks up an attribute by key.
    #[must_use]
    pub fn attr(&self, key: &str) -> Option<AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// An attribute as u64, if present and of that type.
    #[must_use]
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// An attribute as f64 (also accepts u64), if present.
    #[must_use]
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key) {
            Some(AttrValue::F64(v)) => Some(v),
            Some(AttrValue::U64(v)) => Some(v as f64),
            _ => None,
        }
    }

    /// An attribute as a static string, if present and of that type.
    #[must_use]
    pub fn attr_str(&self, key: &str) -> Option<&'static str> {
        match self.attr(key) {
            Some(AttrValue::Str(v)) => Some(v),
            _ => None,
        }
    }

    /// Virtual end of the event (start + duration for spans, the mark
    /// itself otherwise).
    #[must_use]
    pub fn end(&self) -> VTime {
        match self.kind {
            EventKind::Span { start, dur } => start + dur,
            EventKind::Instant { at } | EventKind::Counter { at, .. } => at,
        }
    }
}

/// Sorts events into stable export order: by track, then virtual start,
/// then emission order. Parents (emitted before their children at the
/// same start) stay ahead, which is what containment-nesting viewers
/// expect.
pub fn sort_for_export(events: &mut [Event]) {
    events.sort_by(|a, b| {
        (a.track, a.kind.at().as_secs(), a.seq)
            .partial_cmp(&(b.track, b.kind.at().as_secs(), b.seq))
            .expect("virtual times are finite")
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: u32, start: f64, dur: f64, seq: u64) -> Event {
        Event {
            name: "s",
            cat: "t",
            track,
            kind: EventKind::Span {
                start: VTime::from_secs(start),
                dur: VDuration::from_secs(dur),
            },
            attrs: vec![("bytes", AttrValue::U64(7))],
            seq,
        }
    }

    #[test]
    fn attr_lookup_by_type() {
        let e = span(0, 0.0, 1.0, 0);
        assert_eq!(e.attr_u64("bytes"), Some(7));
        assert_eq!(e.attr_f64("bytes"), Some(7.0));
        assert_eq!(e.attr_str("bytes"), None);
        assert_eq!(e.attr("missing"), None);
    }

    #[test]
    fn sort_orders_by_track_time_then_seq() {
        let mut evs = vec![
            span(1, 0.0, 1.0, 3),
            span(0, 5.0, 1.0, 2),
            span(0, 5.0, 0.5, 4),
        ];
        sort_for_export(&mut evs);
        assert_eq!(
            evs.iter().map(|e| (e.track, e.seq)).collect::<Vec<_>>(),
            vec![(0, 2), (0, 4), (1, 3)]
        );
    }

    #[test]
    fn span_end_is_start_plus_duration() {
        let e = span(0, 2.0, 1.5, 0);
        assert!((e.end().as_secs() - 3.5).abs() < 1e-12);
        assert!((e.kind.at().as_secs() - 2.0).abs() < 1e-12);
    }
}
