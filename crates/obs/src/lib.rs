//! # mccio-obs — observability for the collective I/O stack
//!
//! The paper's whole evaluation is cost *attribution*: where virtual
//! time goes per phase (Figures 6–8), how much aggregation memory each
//! node holds and how much that varies across nodes (Table 1). This
//! crate is the first-class form of those measurements — a scoped span
//! tracer, a metrics registry, and exporters — shared by every layer of
//! the stack:
//!
//! * [`span`] — the event model: complete spans on virtual-time tracks,
//!   instants, and counter samples, each carrying structured attributes
//!   (direction, window id, flows, bytes, …);
//! * [`metrics`] — a registry of named counters, gauges, and
//!   log₂-bucketed histograms (bytes shuffled, storage requests,
//!   buffer-pool hits/misses, retries, per-node aggregation-buffer
//!   high-water marks and their coefficient of variation);
//! * [`sink`] — [`ObsSink`], the per-environment collection point. A
//!   disabled sink (the default) is a `None` behind one branch: every
//!   record call returns immediately, no locks, no allocation, so the
//!   engine's virtual time and wall clock are untouched when tracing is
//!   off — and virtual time is untouched even when it is *on*, because
//!   recording never advances any clock;
//! * [`export`] — Chrome `trace_event` JSON (loadable in Perfetto or
//!   `chrome://tracing`) and a JSONL event stream;
//! * [`json`] — a small self-contained JSON parser used to validate
//!   emitted artifacts (the workspace is dependency-free by design);
//! * [`analyze`] — trace analytics over a sink or a replayed artifact:
//!   critical-path extraction with per-phase attribution and straggler
//!   naming, exact per-node memory-occupancy timelines, and structured
//!   A/B run diffing;
//! * [`stream`] — bounded-memory streaming aggregation for extreme
//!   rank counts: online per-cell statistics, deterministic top-k
//!   straggler retention, and strided exemplar-rank sampling (used by
//!   [`ObsSink::streaming`]);
//! * [`causal`] — message-level happens-before tracing: an online
//!   longest-path fold over every network delivery (O(ranks + path)
//!   memory), cross-rank blame chains that tile each op's elapsed time
//!   to the bit, and what-if projection under re-weighted edge classes
//!   (armed via [`ObsSink::with_causal`]);
//! * [`report`] — a self-contained HTML report (inline SVG timeline
//!   lanes, critical path, occupancy strip charts; zero dependencies).
//!
//! ## Quick example
//!
//! ```
//! use mccio_obs::{AttrValue, EventKind, ObsSink};
//! use mccio_sim::time::{VDuration, VTime};
//!
//! let sink = ObsSink::enabled();
//! sink.span(
//!     mccio_obs::ENGINE_TRACK,
//!     "round",
//!     "engine",
//!     VTime::ZERO,
//!     VDuration::from_secs(0.5),
//!     &[("dir", AttrValue::Str("write")), ("flows", AttrValue::U64(12))],
//! );
//! sink.counter_add("shuffle.bytes", 4096);
//! let events = sink.take_events();
//! assert_eq!(events.len(), 1);
//! assert!(matches!(events[0].kind, EventKind::Span { .. }));
//! let trace = mccio_obs::export::chrome_trace(&events);
//! mccio_obs::export::validate_chrome_trace(&trace).unwrap();
//! ```

#![deny(missing_docs)]

pub mod analyze;
pub mod causal;
pub mod export;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;
pub mod stream;

pub use analyze::{CriticalPath, MemTimeline, Phase, RunDiff, TraceAnalysis, TraceEvent};
pub use causal::{
    BlameChain, BlameSegment, CausalAgg, CausalAnalysis, CausalEdge, CausalOp, SegClass, WhatIf,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::ObsSink;
pub use span::{
    AttrValue, Event, EventKind, CRASH_DETECTED, ENGINE_TRACK, INTEGRITY_VERIFIED, PHASE_NAMES,
    REELECTION, ROUNDS_REPLAYED,
};
pub use stream::{OnlineStat, StreamAgg, StreamCell, StreamConfig};
