//! A self-contained HTML report for one analyzed run: inline SVG
//! timeline lanes, the critical path highlighted and colored by phase,
//! per-node occupancy strip charts, and the attribution/counter tables.
//!
//! The output is a single file with zero external references — no
//! scripts, stylesheets, fonts, or images — so it can be archived as a
//! CI artifact and opened anywhere. Rendering is deterministic: the
//! same analysis produces byte-identical HTML.

use std::fmt::Write as _;

use crate::analyze::{MemTimeline, Phase, RunDiff, TraceAnalysis, TraceEvent};
use crate::causal::SegClass;
use crate::span::{EventKind, ENGINE_TRACK};

/// Chart width in pixels (time axis).
const W: f64 = 960.0;
/// Maximum rank lanes drawn before eliding the rest.
const MAX_LANES: usize = 40;

/// The fill color a phase renders with.
#[must_use]
pub fn phase_color(phase: Phase) -> &'static str {
    match phase {
        Phase::Sync => "#888888",
        Phase::Shuffle => "#4c78a8",
        Phase::Storage => "#f58518",
        Phase::Assembly => "#54a24b",
        Phase::Backoff => "#e45756",
        Phase::Prologue => "#bab0ac",
        Phase::Gap => "#d4d4d4",
        Phase::Epilogue => "#9d755d",
    }
}

/// Escapes text for embedding in HTML (element content and attributes).
#[must_use]
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report: summary, critical-path lanes, rank timeline
/// lanes, occupancy strip charts, attribution and counter tables, and —
/// when `diff` is given — the A/B comparison.
#[must_use]
pub fn render(
    title: &str,
    events: &[TraceEvent],
    analysis: &TraceAnalysis,
    diff: Option<&RunDiff>,
) -> String {
    let (t0, t1) = time_bounds(events, analysis);
    let scale = Scale { t0, t1 };
    let mut out = String::with_capacity(64 * 1024);
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{}</title>\n<style>\n{}\n</style>\n</head>\n<body>\n<h1>{}</h1>\n",
        html_escape(title),
        CSS,
        html_escape(title)
    );
    summary_section(&mut out, analysis);
    critical_path_section(&mut out, analysis, &scale);
    lanes_section(&mut out, events, analysis, &scale);
    memory_section(&mut out, &analysis.memory, &scale);
    attribution_section(&mut out, analysis);
    causal_section(&mut out, analysis);
    streaming_section(&mut out, analysis);
    host_section(&mut out, analysis);
    counters_section(&mut out, analysis);
    gauges_section(&mut out, analysis);
    histograms_section(&mut out, analysis);
    if let Some(d) = diff {
        diff_section(&mut out, d);
    }
    out.push_str("</body>\n</html>\n");
    out
}

const CSS: &str = "body{font-family:system-ui,sans-serif;margin:24px;color:#222}\n\
h1{font-size:20px}h2{font-size:16px;margin-top:28px}\n\
table{border-collapse:collapse;font-size:13px}\n\
td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}\n\
th{background:#f2f2f2}td.l,th.l{text-align:left}\n\
svg{display:block;margin:6px 0}\n\
.legend span{display:inline-block;margin-right:12px;font-size:12px}\n\
.legend i{display:inline-block;width:10px;height:10px;margin-right:4px}";

struct Scale {
    t0: f64,
    t1: f64,
}

impl Scale {
    fn x(&self, t: f64) -> f64 {
        if self.t1 <= self.t0 {
            return 0.0;
        }
        (t - self.t0) / (self.t1 - self.t0) * W
    }

    fn width(&self, dur: f64) -> f64 {
        if self.t1 <= self.t0 {
            return 0.0;
        }
        (dur / (self.t1 - self.t0) * W).max(0.1)
    }
}

fn time_bounds(events: &[TraceEvent], analysis: &TraceAnalysis) -> (f64, f64) {
    let mut t0 = f64::INFINITY;
    let mut t1 = f64::NEG_INFINITY;
    for e in events {
        t0 = t0.min(e.kind.at().as_secs());
        t1 = t1.max(e.end().as_secs());
    }
    for op in &analysis.ops {
        t0 = t0.min(op.start.as_secs());
        t1 = t1.max((op.start + op.total).as_secs());
    }
    if !t0.is_finite() || !t1.is_finite() {
        (0.0, 1.0)
    } else {
        (t0, t1)
    }
}

fn summary_section(out: &mut String, analysis: &TraceAnalysis) {
    out.push_str(
        "<h2>Operations</h2>\n<table>\n<tr><th class=\"l\">op</th><th class=\"l\">dir</th>\
         <th>rounds</th><th>total (s)</th><th class=\"l\">dominant</th>\
         <th class=\"l\">top straggler</th></tr>\n",
    );
    for (i, op) in analysis.ops.iter().enumerate() {
        let straggler = op
            .top_straggler()
            .map_or("—".to_string(), |(r, n)| format!("rank {r} ({n}×)"));
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{i}</td><td class=\"l\">{}</td><td>{}</td>\
             <td>{:.6}</td><td class=\"l\">{}</td><td class=\"l\">{}</td></tr>",
            html_escape(&op.dir),
            op.rounds,
            op.total.as_secs(),
            op.attribution.dominant().name(),
            html_escape(&straggler),
        );
    }
    out.push_str("</table>\n");
}

fn legend(out: &mut String) {
    out.push_str("<div class=\"legend\">");
    for &p in &Phase::ALL {
        let _ = write!(
            out,
            "<span><i style=\"background:{}\"></i>{}</span>",
            phase_color(p),
            p.name()
        );
    }
    out.push_str("</div>\n");
}

fn critical_path_section(out: &mut String, analysis: &TraceAnalysis, scale: &Scale) {
    out.push_str("<h2>Critical path</h2>\n");
    legend(out);
    let lane_h = 26.0;
    let h = lane_h * analysis.ops.len() as f64 + 4.0;
    let _ = writeln!(
        out,
        "<svg width=\"{W}\" height=\"{h}\" viewBox=\"0 0 {W} {h}\" role=\"img\" \
         aria-label=\"critical path\">"
    );
    for (i, op) in analysis.ops.iter().enumerate() {
        let y = lane_h * i as f64 + 2.0;
        for seg in &op.segments {
            let x = scale.x(seg.start.as_secs());
            let w = scale.width(seg.dur.as_secs());
            let mut tip = format!(
                "{} {:.6}s @ {:.6}s",
                seg.phase.name(),
                seg.dur.as_secs(),
                seg.start.as_secs()
            );
            if let Some(r) = seg.round {
                let _ = write!(tip, " round {r}");
            }
            if let Some(rank) = seg.straggler {
                let _ = write!(tip, " straggler rank {rank}");
            }
            let _ = writeln!(
                out,
                "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{:.1}\" \
                 fill=\"{}\"><title>{}</title></rect>",
                lane_h - 6.0,
                phase_color(seg.phase),
                html_escape(&tip)
            );
        }
    }
    out.push_str("</svg>\n");
}

fn lanes_section(out: &mut String, events: &[TraceEvent], analysis: &TraceAnalysis, scale: &Scale) {
    // One lane per rank track, engine track first; spans render as
    // boxes, instants as ticks.
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    tracks.retain(|&t| t != ENGINE_TRACK);
    let elided = tracks.len().saturating_sub(MAX_LANES);
    tracks.truncate(MAX_LANES);
    out.push_str("<h2>Timeline</h2>\n");
    if elided > 0 {
        let _ = writeln!(out, "<p>({elided} more rank lanes elided)</p>");
    }
    let lane_h = 16.0;
    let label_w = 70.0;
    let n_lanes = tracks.len() + 1;
    let h = lane_h * n_lanes as f64 + 4.0;
    let total_w = W + label_w;
    let _ = writeln!(
        out,
        "<svg width=\"{total_w}\" height=\"{h}\" viewBox=\"0 0 {total_w} {h}\" role=\"img\" \
         aria-label=\"per-rank timeline\">"
    );
    // Engine lane: op outlines plus the round phases colored as on the
    // critical path (the path is the engine lane, highlighted).
    let mut lane = 0usize;
    let y = 2.0;
    let _ = writeln!(
        out,
        "<text x=\"2\" y=\"{:.1}\" font-size=\"10\">engine</text>",
        y + lane_h - 6.0
    );
    for op in &analysis.ops {
        for seg in &op.segments {
            let x = label_w + scale.x(seg.start.as_secs());
            let w = scale.width(seg.dur.as_secs());
            let _ = writeln!(
                out,
                "<rect x=\"{x:.2}\" y=\"{:.1}\" width=\"{w:.2}\" height=\"{:.1}\" \
                 fill=\"{}\" stroke=\"#333\" stroke-width=\"0.3\"/>",
                y,
                lane_h - 4.0,
                phase_color(seg.phase),
            );
        }
    }
    lane += 1;
    for &track in &tracks {
        let y = lane_h * lane as f64 + 2.0;
        let _ = writeln!(
            out,
            "<text x=\"2\" y=\"{:.1}\" font-size=\"10\">rank {track}</text>",
            y + lane_h - 6.0
        );
        for e in events.iter().filter(|e| e.track == track) {
            match e.kind {
                EventKind::Span { start, dur } => {
                    let x = label_w + scale.x(start.as_secs());
                    let w = scale.width(dur.as_secs());
                    let _ = writeln!(
                        out,
                        "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{:.1}\" \
                         fill=\"#a5c8e4\"><title>{}</title></rect>",
                        lane_h - 4.0,
                        html_escape(&e.name)
                    );
                }
                EventKind::Instant { at } => {
                    let x = label_w + scale.x(at.as_secs());
                    let color = match e.cat.as_str() {
                        "mem" => "#f58518",
                        "fault" => "#e45756",
                        _ => "#666666",
                    };
                    let _ = writeln!(
                        out,
                        "<rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"1\" height=\"{:.1}\" \
                         fill=\"{color}\"><title>{}</title></rect>",
                        lane_h - 4.0,
                        html_escape(&e.name)
                    );
                }
                EventKind::Counter { .. } => {}
            }
        }
        lane += 1;
    }
    out.push_str("</svg>\n");
}

fn memory_section(out: &mut String, memory: &[MemTimeline], scale: &Scale) {
    if memory.is_empty() {
        return;
    }
    out.push_str("<h2>Memory occupancy</h2>\n");
    let h = 72.0;
    for tl in memory {
        let top = tl
            .points
            .iter()
            .map(|p| p.ceiling.max(p.occupancy))
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let ypix = |bytes: u64| h - 2.0 - (bytes as f64 / top) * (h - 14.0);
        let _ = writeln!(
            out,
            "<h3 style=\"font-size:13px;margin:10px 0 0\">node {} — peak {} B, \
             reserved {} B, released {} B{}</h3>",
            tl.node,
            tl.peak,
            tl.reserved,
            tl.released,
            if tl.within_ceiling() {
                String::new()
            } else {
                format!(", {} overflow window(s)", tl.overflow.len())
            }
        );
        let _ = writeln!(
            out,
            "<svg width=\"{W}\" height=\"{h}\" viewBox=\"0 0 {W} {h}\" role=\"img\" \
             aria-label=\"node {} occupancy\">",
            tl.node
        );
        // Overflow windows shade first so the curves draw on top.
        for &(s, e) in &tl.overflow {
            let x = scale.x(s.as_secs());
            let w = (scale.x(e.as_secs()) - x).max(0.5);
            let _ = writeln!(
                out,
                "<rect x=\"{x:.2}\" y=\"0\" width=\"{w:.2}\" height=\"{h}\" \
                 fill=\"#e45756\" opacity=\"0.25\"/>"
            );
        }
        // Ceiling: dashed step line. Occupancy: solid step line.
        for (points, style) in [
            (
                ceiling_steps(tl),
                "fill=\"none\" stroke=\"#555\" stroke-dasharray=\"4 3\"",
            ),
            (
                occupancy_steps(tl),
                "fill=\"none\" stroke=\"#4c78a8\" stroke-width=\"1.5\"",
            ),
        ] {
            let mut d = String::new();
            for (i, (t, v)) in points.iter().enumerate() {
                let cmd = if i == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{:.2},{:.2} ", scale.x(*t), ypix(*v));
            }
            let _ = writeln!(out, "<path d=\"{}\" {style}/>", d.trim_end());
        }
        out.push_str("</svg>\n");
    }
}

/// The occupancy step polyline: hold each value until the next event.
fn occupancy_steps(tl: &MemTimeline) -> Vec<(f64, u64)> {
    steps(tl, |p| p.occupancy)
}

/// The ceiling step polyline.
fn ceiling_steps(tl: &MemTimeline) -> Vec<(f64, u64)> {
    steps(tl, |p| p.ceiling)
}

fn steps(tl: &MemTimeline, f: impl Fn(&crate::analyze::MemPoint) -> u64) -> Vec<(f64, u64)> {
    let mut out = Vec::with_capacity(tl.points.len() * 2);
    let mut prev: Option<u64> = None;
    for p in &tl.points {
        let v = f(p);
        let t = p.at.as_secs();
        if let Some(pv) = prev {
            out.push((t, pv)); // hold until this instant
        }
        out.push((t, v));
        prev = Some(v);
    }
    out
}

fn attribution_section(out: &mut String, analysis: &TraceAnalysis) {
    out.push_str("<h2>Attribution</h2>\n<table>\n<tr><th class=\"l\">op</th>");
    for &p in &Phase::ALL {
        let _ = write!(out, "<th>{}</th>", p.name());
    }
    out.push_str("<th>total (s)</th></tr>\n");
    for (i, op) in analysis.ops.iter().enumerate() {
        let _ = write!(
            out,
            "<tr><td class=\"l\">{i} ({})</td>",
            html_escape(&op.dir)
        );
        for &p in &Phase::ALL {
            let secs = op.attribution.get(p);
            let pct = if op.total.as_secs() > 0.0 {
                secs / op.total.as_secs() * 100.0
            } else {
                0.0
            };
            let _ = write!(out, "<td>{secs:.6} ({pct:.1}%)</td>");
        }
        let _ = writeln!(out, "<td>{:.6}</td></tr>", op.total.as_secs());
    }
    out.push_str("</table>\n");
}

/// Maximum blame-chain segment rows rendered per op before eliding.
const MAX_CHAIN_ROWS: usize = 96;

/// The fill color a causal segment class renders with in the chain
/// table's class cell.
fn class_color(class: SegClass) -> &'static str {
    match class {
        SegClass::Work => "#54a24b",
        SegClass::SyncWait => "#888888",
        SegClass::Transfer => "#4c78a8",
    }
}

fn causal_section(out: &mut String, analysis: &TraceAnalysis) {
    let Some(causal) = &analysis.causal else {
        return;
    };
    if causal.is_empty() {
        return;
    }
    out.push_str("<h2>Root cause (blame chains)</h2>\n");
    out.push_str(
        "<p>The actual cross-rank happens-before path of each op: which rank's \
         work and which message's flight time the elapsed seconds sit on. \
         Segment joints are bit-equal and the chain total is bit-identical to \
         the op's elapsed virtual time.</p>\n",
    );
    for (i, op) in causal.ops.iter().enumerate() {
        let chain = &op.chain;
        let total = chain.total().as_secs();
        let ranks = chain
            .ranks()
            .iter()
            .map(|r| format!("{r}"))
            .collect::<Vec<_>>()
            .join(" → ");
        let _ = writeln!(
            out,
            "<h3 style=\"font-size:13px;margin:10px 0 0\">op {i} ({}) — {total:.6}s, \
             {} hops via ranks {}; work {:.6}s, wait {:.6}s</h3>",
            html_escape(chain.dir),
            chain.hops(),
            html_escape(&ranks),
            op.work_secs,
            op.wait_secs,
        );
        out.push_str(
            "<table>\n<tr><th>#</th><th>rank</th><th class=\"l\">class</th>\
             <th>from (s)</th><th>to (s)</th><th>dur (s)</th><th>share</th></tr>\n",
        );
        for (j, seg) in chain.segments.iter().take(MAX_CHAIN_ROWS).enumerate() {
            let dur = seg.dur().as_secs();
            let share = if total > 0.0 {
                dur / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "<tr><td>{j}</td><td>{}</td>\
                 <td class=\"l\" style=\"border-left:6px solid {}\">{}</td>\
                 <td>{:.9}</td><td>{:.9}</td><td>{dur:.9}</td><td>{share:.1}%</td></tr>",
                seg.rank,
                class_color(seg.class),
                seg.class.name(),
                seg.from.as_secs(),
                seg.to.as_secs(),
            );
        }
        out.push_str("</table>\n");
        if chain.segments.len() > MAX_CHAIN_ROWS {
            let _ = writeln!(
                out,
                "<p>({} more chain segments elided)</p>",
                chain.segments.len() - MAX_CHAIN_ROWS
            );
        }
        if !op.what_ifs.is_empty() {
            out.push_str(
                "<table style=\"margin-top:8px\">\n<tr><th class=\"l\">what-if</th>\
                 <th>projected (s)</th><th>speedup</th></tr>\n",
            );
            for w in &op.what_ifs {
                let speedup = if w.speedup.is_finite() {
                    format!("{:.2}&times;", w.speedup)
                } else {
                    "&#8734;".to_string()
                };
                let _ = writeln!(
                    out,
                    "<tr><td class=\"l\">{}</td><td>{:.6}</td><td>{speedup}</td></tr>",
                    html_escape(w.name),
                    w.projected_secs,
                );
            }
            out.push_str("</table>\n");
        }
    }
}

/// Maximum streaming-attribution cell rows rendered before eliding.
const MAX_STREAM_ROWS: usize = 64;

fn streaming_section(out: &mut String, analysis: &TraceAnalysis) {
    let Some(agg) = &analysis.streaming else {
        return;
    };
    let cfg = agg.config();
    out.push_str("<h2>Streaming attribution</h2>\n");
    let _ = writeln!(
        out,
        "<p>{} events folded into {} cells, {} retained \
         (exemplar stride {}, max {} lanes, top-{} stragglers).</p>",
        agg.folded_events,
        agg.cell_count(),
        agg.retained_events,
        cfg.exemplar_stride,
        cfg.exemplar_max,
        cfg.top_k
    );
    out.push_str(
        "<table>\n<tr><th class=\"l\">event</th><th>t (s)</th><th>n</th>\
         <th class=\"l\">quantity</th><th>mean</th><th>min</th><th>max</th>\
         <th class=\"l\">top stragglers</th></tr>\n",
    );
    for (name, at, cell) in agg.cells().take(MAX_STREAM_ROWS) {
        // One row per cell: span cells report duration (ns), counter
        // cells the sampled value, instant cells their heaviest attr.
        let (quantity, stat) = match cell.kind {
            "span" => ("dur (ns)".to_string(), Some(&cell.dur_nanos)),
            "counter" => ("value".to_string(), Some(&cell.value)),
            _ => cell
                .attrs
                .iter()
                .max_by_key(|(_, s)| s.sum)
                .map_or(("—".to_string(), None), |(k, s)| {
                    ((*k).to_string(), Some(s))
                }),
        };
        let (mean, min, max, top) = stat.map_or_else(
            || (0.0, 0, 0, String::new()),
            |s| {
                let top = s
                    .top
                    .iter()
                    .map(|&(v, r)| format!("rank {r} ({v})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                (s.mean(), s.min_or_zero(), s.max, top)
            },
        );
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{:.6}</td><td>{}</td>\
             <td class=\"l\">{}</td><td>{mean:.1}</td><td>{min}</td><td>{max}</td>\
             <td class=\"l\">{}</td></tr>",
            html_escape(name),
            at.as_secs(),
            cell.count,
            html_escape(&quantity),
            html_escape(&top)
        );
    }
    out.push_str("</table>\n");
    if agg.cell_count() > MAX_STREAM_ROWS {
        let _ = writeln!(
            out,
            "<p>({} more cells elided)</p>",
            agg.cell_count() - MAX_STREAM_ROWS
        );
    }
}

fn host_section(out: &mut String, analysis: &TraceAnalysis) {
    let Some(host) = &analysis.host else {
        return;
    };
    out.push_str("<h2>Host-wall profile</h2>\n");
    let profiled = host.profiled_secs();
    let _ = writeln!(
        out,
        "<p>Host wall {:.3}s for {:.3} virtual s simulated; {:.3}s attributed below \
         (phases may nest). Host times are nondeterministic observability data.</p>",
        host.wall_secs, host.virtual_secs, profiled
    );
    out.push_str(
        "<table>\n<tr><th class=\"l\">simulator phase</th><th>calls</th>\
         <th>host (ms)</th><th>share</th></tr>\n",
    );
    for p in &host.phases {
        if p.calls == 0 {
            continue;
        }
        let share = if profiled > 0.0 {
            p.secs() / profiled * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{:.3}</td><td>{share:.1}%</td></tr>",
            html_escape(p.name),
            p.calls,
            p.secs() * 1e3
        );
    }
    out.push_str("</table>\n");
}

fn histograms_section(out: &mut String, analysis: &TraceAnalysis) {
    if analysis.histograms.is_empty() {
        return;
    }
    out.push_str(
        "<h2>Histograms</h2>\n<table>\n<tr><th class=\"l\">histogram</th><th>n</th>\
         <th>mean</th><th>cov</th><th>min</th><th>max</th>\
         <th class=\"l\">log2 buckets (&lt;bound: count)</th></tr>\n",
    );
    for (name, h) in &analysis.histograms {
        let buckets = h
            .nonzero_buckets()
            .iter()
            .map(|(bound, count)| format!("<{bound}: {count}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{:.1}</td><td>{:.3}</td>\
             <td>{:.0}</td><td>{:.0}</td><td class=\"l\">{}</td></tr>",
            html_escape(name),
            h.count(),
            h.mean(),
            h.cov(),
            h.min(),
            h.max(),
            html_escape(&buckets)
        );
    }
    out.push_str("</table>\n");
}

fn counters_section(out: &mut String, analysis: &TraceAnalysis) {
    if analysis.counters.is_empty() {
        return;
    }
    out.push_str(
        "<h2>Counters</h2>\n<table>\n<tr><th class=\"l\">counter</th><th>value</th></tr>\n",
    );
    for (name, v) in &analysis.counters {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{v}</td></tr>",
            html_escape(name)
        );
    }
    out.push_str("</table>\n");
}

fn gauges_section(out: &mut String, analysis: &TraceAnalysis) {
    if analysis.gauges.is_empty() {
        return;
    }
    out.push_str("<h2>Gauges</h2>\n<table>\n<tr><th class=\"l\">gauge</th><th>value</th></tr>\n");
    for (name, v) in &analysis.gauges {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{v:.0}</td></tr>",
            html_escape(name)
        );
    }
    out.push_str("</table>\n");
}

fn diff_section(out: &mut String, diff: &RunDiff) {
    out.push_str(
        "<h2>A/B comparison</h2>\n<table>\n<tr><th class=\"l\">phase</th>\
         <th>a (s)</th><th>b (s)</th><th>delta (s)</th></tr>\n",
    );
    for p in &diff.phases {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{:.6}</td><td>{:.6}</td><td>{:+.6}</td></tr>",
            p.phase.name(),
            p.a_secs,
            p.b_secs,
            p.delta()
        );
    }
    out.push_str("</table>\n");
    let changed: Vec<_> = diff.counters.iter().filter(|c| c.delta() != 0).collect();
    if !changed.is_empty() {
        out.push_str(
            "<table style=\"margin-top:8px\">\n<tr><th class=\"l\">counter</th>\
             <th>a</th><th>b</th><th>delta</th></tr>\n",
        );
        for c in changed {
            let _ = writeln!(
                out,
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{:+}</td></tr>",
                html_escape(&c.name),
                c.a,
                c.b,
                c.delta()
            );
        }
        out.push_str("</table>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::AttrVal;
    use mccio_sim::time::{VDuration, VTime};

    fn sample() -> (Vec<TraceEvent>, TraceAnalysis) {
        let events = vec![
            TraceEvent {
                name: "op".into(),
                cat: "engine".into(),
                track: ENGINE_TRACK,
                kind: EventKind::Span {
                    start: VTime::ZERO,
                    dur: VDuration::from_secs(2.0),
                },
                attrs: vec![("dir".into(), AttrVal::Str("write".into()))],
                seq: 0,
            },
            TraceEvent {
                name: "round".into(),
                cat: "engine".into(),
                track: ENGINE_TRACK,
                kind: EventKind::Span {
                    start: VTime::ZERO,
                    dur: VDuration::from_secs(2.0),
                },
                attrs: vec![
                    ("dir".into(), AttrVal::Str("write".into())),
                    ("sync_secs".into(), AttrVal::F64(0.5)),
                    ("shuffle_secs".into(), AttrVal::F64(0.5)),
                    ("storage_secs".into(), AttrVal::F64(1.0)),
                    ("assembly_secs".into(), AttrVal::F64(0.0)),
                    ("backoff_secs".into(), AttrVal::F64(0.0)),
                    ("storage_rank".into(), AttrVal::U64(5)),
                ],
                seq: 1,
            },
            TraceEvent {
                name: "mem.reserve".into(),
                cat: "mem".into(),
                track: 3,
                kind: EventKind::Instant { at: VTime::ZERO },
                attrs: vec![
                    ("node".into(), AttrVal::U64(0)),
                    ("bytes".into(), AttrVal::U64(64)),
                    ("ceiling".into(), AttrVal::U64(128)),
                ],
                seq: 2,
            },
            TraceEvent {
                name: "mem.release".into(),
                cat: "mem".into(),
                track: 3,
                kind: EventKind::Instant {
                    at: VTime::from_secs(2.0),
                },
                attrs: vec![
                    ("node".into(), AttrVal::U64(0)),
                    ("bytes".into(), AttrVal::U64(64)),
                    ("ceiling".into(), AttrVal::U64(128)),
                ],
                seq: 3,
            },
        ];
        let analysis = TraceAnalysis::from_events(&events).unwrap();
        (events, analysis)
    }

    #[test]
    fn report_is_self_contained_html() {
        let (events, analysis) = sample();
        let html = render("test report", &events, &analysis, None);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("<svg"));
        assert!(html.contains("Critical path"));
        assert!(html.contains("Memory occupancy"));
        assert!(html.contains("straggler rank 5"));
        // Self-contained: no external references of any kind.
        for needle in ["http://", "https://", "<script", "<link", "<img", "src="] {
            assert!(!html.contains(needle), "found {needle}");
        }
    }

    #[test]
    fn streaming_host_and_histogram_sections_render() {
        use crate::sink::ObsSink;
        use crate::span::AttrValue;
        use crate::stream::StreamConfig;
        use mccio_sim::hostprof::{HostPhaseStat, HostProfile};

        let (events, mut analysis) = sample();
        let sink = ObsSink::streaming(StreamConfig {
            top_k: 2,
            exemplar_stride: 1,
            exemplar_max: 1,
        });
        for rank in 0..16u32 {
            sink.span(
                rank,
                "prologue",
                "engine",
                VTime::ZERO,
                VDuration::from_secs(f64::from(rank) * 1e-3),
                &[("bytes", AttrValue::U64(64))],
            );
            sink.instant(
                rank,
                "rank.round",
                "engine",
                VTime::from_secs(1.0),
                &[("sent_bytes", AttrValue::U64(u64::from(rank)))],
            );
        }
        analysis.streaming = sink.stream_stats();
        analysis.host = Some(HostProfile {
            phases: vec![HostPhaseStat {
                name: "exec.schedule",
                calls: 12,
                nanos: 3_000_000,
            }],
            wall_secs: 1.25,
            virtual_secs: 2.0,
        });
        let mut m = crate::metrics::MetricsRegistry::new();
        m.observe("mem.node_peak_bytes", 4096);
        analysis.histograms = m.histogram_map();

        let html = render("scaled", &events, &analysis, None);
        assert!(html.contains("Streaming attribution"));
        assert!(html.contains("Host-wall profile"));
        assert!(html.contains("Histograms"));
        assert!(html.contains("exec.schedule"));
        assert!(html.contains("mem.node_peak_bytes"));
        assert!(html.contains("rank.round"));
        for needle in ["http://", "https://", "<script", "<link", "<img", "src="] {
            assert!(!html.contains(needle), "found {needle}");
        }
        assert_eq!(
            render("scaled", &events, &analysis, None),
            render("scaled", &events, &analysis, None),
            "rendering with the new sections stays deterministic"
        );
    }

    #[test]
    fn causal_section_renders_blame_chain_and_what_ifs() {
        use crate::causal::{CausalAgg, CausalAnalysis};
        use mccio_sim::causal::CausalSink as _;

        let (events, mut analysis) = sample();
        let agg = CausalAgg::new(true);
        let seq = agg.on_send(0, 1, VTime::from_secs(0.8), 64, true);
        agg.on_delivery(0, seq, 1, VTime::from_secs(0.2), VTime::from_secs(1.2));
        agg.op_end(1, VTime::ZERO, VTime::from_secs(2.0), "write");
        analysis.causal = Some(CausalAnalysis::from_chains(&agg.chains(), &analysis.ops));
        let html = render("causal", &events, &analysis, None);
        assert!(html.contains("Root cause (blame chains)"));
        assert!(html.contains("transfer"));
        assert!(html.contains("zero-network"));
        assert!(html.contains("infinite-pfs"));
        assert!(html.contains("uniform-memory"));
        for needle in ["http://", "https://", "<script", "<link", "<img", "src="] {
            assert!(!html.contains(needle), "found {needle}");
        }
        assert_eq!(
            render("causal", &events, &analysis, None),
            render("causal", &events, &analysis, None),
            "causal section stays deterministic"
        );
    }

    #[test]
    fn diff_section_renders_when_given() {
        let (events, analysis) = sample();
        let d = analysis.diff(&analysis);
        let html = render("diffed", &events, &analysis, Some(&d));
        assert!(html.contains("A/B comparison"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let (events, analysis) = sample();
        assert_eq!(
            render("t", &events, &analysis, None),
            render("t", &events, &analysis, None)
        );
    }

    #[test]
    fn escape_covers_html_metacharacters() {
        assert_eq!(html_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
    }
}
