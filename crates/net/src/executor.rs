//! The discrete-event cooperative executor.
//!
//! [`run_event`] drives every rank as a *stackful coroutine* on one OS
//! thread: a scheduler repeatedly resumes the runnable task with the
//! smallest virtual clock (ties broken by `(rank, wake-seq)`), and a task
//! runs until it blocks on an empty mailbox, finishes, or panics. Blocking
//! receives become yield points — `Ctx::recv` parks the task with its
//! match [`Pattern`] and the matching `deliver` marks it runnable again —
//! so a 100k-rank world costs 100k small stacks instead of 100k threads.
//!
//! ## Determinism
//!
//! Virtual-time results in this simulator are schedule-invariant by
//! construction (receives name their sources, clock math is pure), so any
//! legal schedule reproduces the threaded engine's times bit for bit. The
//! event scheduler additionally fixes *one* canonical schedule — the
//! runnable heap is ordered by `(clock bits, rank, wake-seq)` — which
//! makes execution order itself reproducible across platforms and runs.
//!
//! ## Deadline waits without wall clocks
//!
//! The threaded engine detects a silent peer in `Ctx::recv_deadline` by
//! parking the OS thread for a small wall-clock budget. Here the rule is
//! exact: a deadline waiter is declared missed only at *quiescence* (no
//! task is runnable), earliest `(deadline bits, rank)` first. Callers may
//! only probe peers whose silence is already decided by shared data (the
//! engine's crash tracker probes a tag nothing sends on), so "nothing can
//! run" is precisely "the message will never come".
//!
//! ## Stacks
//!
//! Task stacks are carved out of one lazily-committed slab allocation
//! (100k separate mappings would exhaust `vm.max_map_count`), sized by
//! `MCCIO_STACK_KIB` (default 512 KiB, min 64). Each stack's low end
//! carries a canary word; a clobbered canary aborts with advice to raise
//! the knob. The slab has no guard pages — the canary is the tripwire.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mccio_sim::hostprof::{self, HostPhase};
use mccio_sim::VTime;

use crate::engine::{Ctx, World};
use crate::mailbox::Pattern;

/// Default per-task stack size when `MCCIO_STACK_KIB` is unset.
const DEFAULT_STACK_KIB: usize = 512;
/// Smallest accepted stack; below this even the entry thunk is unsafe.
const MIN_STACK_KIB: usize = 64;
/// Written at the low end of every task stack; checked when the task
/// finishes and again when the world drains.
const STACK_CANARY: u64 = 0x5AFE_57AC_CA4A_717E;

/// Whether this target has a context-switch backend. On other
/// architectures `World::run` falls back to the threaded engine.
pub(crate) const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

// ---------------------------------------------------------------------
// Context switch: save callee-saved state on the current stack, store
// the stack pointer through `save`, load one from `load`, restore, ret.
// ---------------------------------------------------------------------

/// x86_64 SysV: rbp, rbx, r12-r15 are callee-saved, plus the MXCSR and
/// x87 control words. The seeded frame "returns" into `ctx_entry_thunk`.
#[cfg(target_arch = "x86_64")]
#[unsafe(naked)]
unsafe extern "C" fn ctx_swap(_save: *mut usize, _load: *const usize) {
    core::arch::naked_asm!(
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr [rsp]",
        "fnstcw [rsp + 4]",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "ldmxcsr [rsp]",
        "fldcw [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    )
}

/// First frame of every task. `init_stack` seeds r12 with the task-data
/// pointer and r13 with the entry function; the `sub` re-establishes the
/// 16-byte call alignment the SysV ABI requires at `call`.
#[cfg(target_arch = "x86_64")]
#[unsafe(naked)]
unsafe extern "C" fn ctx_entry_thunk() {
    core::arch::naked_asm!("sub rsp, 8", "mov rdi, r12", "call r13", "ud2")
}

/// AAPCS64: x19-x28, fp (x29), lr (x30) and d8-d15 are callee-saved.
#[cfg(target_arch = "aarch64")]
#[unsafe(naked)]
unsafe extern "C" fn ctx_swap(_save: *mut usize, _load: *const usize) {
    core::arch::naked_asm!(
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x9, sp",
        "str x9, [x0]",
        "ldr x9, [x1]",
        "mov sp, x9",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "ret",
    )
}

/// First frame of every task: x19 = task data, x20 = entry function.
#[cfg(target_arch = "aarch64")]
#[unsafe(naked)]
unsafe extern "C" fn ctx_entry_thunk() {
    core::arch::naked_asm!("mov x0, x19", "blr x20", "brk #1")
}

type EntryFn = extern "C" fn(*mut u8);

/// Seeds a fresh stack so the first `ctx_swap` into it lands in
/// `ctx_entry_thunk` with `data`/`entry` in the thunk's registers.
/// Returns the initial saved stack pointer.
///
/// Layout (both arches): the top of the region holds the seeded
/// callee-saved frame; everything below is free stack.
fn init_stack(region: &mut [u8], entry: EntryFn, data: *mut u8) -> usize {
    let base = region.as_mut_ptr() as usize;
    // Stacks grow down from a 16-byte-aligned top.
    let top = (base + region.len()) & !15;
    let mut sp = top;
    #[cfg(target_arch = "x86_64")]
    {
        // Words are pushed high-to-low, mirroring ctx_swap's restore
        // order (low-to-high: mxcsr/fcw, r15, r14, r13, r12, rbx, rbp,
        // return address). Within-bounds by construction: the frame is
        // < 200 bytes and MIN_STACK_KIB is 64.
        let push = |sp: &mut usize, word: usize| {
            *sp -= size_of::<usize>();
            unsafe { (*sp as *mut usize).write(word) };
        };
        push(&mut sp, 0); // terminator / alignment slot
        push(&mut sp, ctx_entry_thunk as *const () as usize); // return address -> thunk
        push(&mut sp, 0); // rbp
        push(&mut sp, 0); // rbx
        push(&mut sp, data as usize); // r12
        push(&mut sp, entry as usize); // r13
        push(&mut sp, 0); // r14
        push(&mut sp, 0); // r15
                          // MXCSR (0x1F80) and x87 CW (0x037F) power-on defaults, packed
                          // into one slot exactly as ctx_swap's stmxcsr/fnstcw pair lays
                          // them out.
        push(&mut sp, (0x037F_usize << 32) | 0x1F80);
    }
    #[cfg(target_arch = "aarch64")]
    {
        sp -= 160;
        let frame = sp as *mut usize;
        for i in 0..20 {
            unsafe { frame.add(i).write(0) };
        }
        unsafe {
            frame.add(0).write(data as usize); // x19
            frame.add(1).write(entry as usize); // x20
            frame.add(11).write(ctx_entry_thunk as usize); // x30 (lr)
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = (entry, data);
        unreachable!("run_event is gated on executor::SUPPORTED");
    }
    sp
}

// ---------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------

#[derive(Debug)]
enum TaskState {
    /// Queued in the runnable heap (or about to be).
    Runnable,
    /// Currently on the CPU.
    Running,
    /// Parked on an empty mailbox. `deadline_bits` is set for
    /// `recv_deadline` waits; `timed_out` is set by the scheduler when
    /// the wait is declared missed at quiescence.
    Blocked {
        pattern: Pattern,
        deadline_bits: Option<u64>,
        timed_out: bool,
    },
    /// Finished (result stored or panic recorded). Never resumed.
    Done,
}

#[derive(Debug)]
struct TaskSlot {
    state: TaskState,
    /// The task's virtual clock when it last yielded; the wake-up heap
    /// key uses it so the smallest-clock task always runs next.
    clock_bits: u64,
}

/// Shared scheduler core. One per `run_event` call; tasks hold it via
/// [`TaskHandle`] inside their `Ctx`.
pub(crate) struct EventRt {
    slots: RefCell<Vec<TaskSlot>>,
    /// Min-heap of runnable tasks keyed `(clock bits, rank, wake seq)`.
    /// Non-negative f64 bit patterns order exactly like the values, and
    /// the `(rank, seq)` tie-break pins one canonical schedule.
    runnable: RefCell<BinaryHeap<Reverse<(u64, usize, u64)>>>,
    /// Blocked `recv_deadline` waiters, earliest `(deadline, rank)` first.
    waiters: RefCell<BTreeSet<(u64, usize)>>,
    /// Monotone wake-sequence counter (satellite of the heap key).
    wake_seq: Cell<u64>,
    /// Saved stack pointers: one per task plus the scheduler's own at
    /// index `n`. UnsafeCell because ctx_swap writes through raw
    /// pointers into it while Rust-level borrows are not active.
    sps: UnsafeCell<Vec<usize>>,
    /// First panic payload from any task; the scheduler stops and
    /// rethrows it on the main thread.
    panic: RefCell<Option<Box<dyn std::any::Any + Send + 'static>>>,
    n_done: Cell<usize>,
}

impl std::fmt::Debug for EventRt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRt").finish_non_exhaustive()
    }
}

/// A task's handle back into the scheduler, carried by `Ctx`.
#[derive(Debug, Clone)]
pub(crate) struct TaskHandle {
    rt: Rc<EventRt>,
    rank: usize,
}

impl EventRt {
    fn new(n: usize) -> Rc<EventRt> {
        Rc::new(EventRt {
            slots: RefCell::new(
                (0..n)
                    .map(|_| TaskSlot {
                        state: TaskState::Runnable,
                        clock_bits: 0,
                    })
                    .collect(),
            ),
            runnable: RefCell::new(BinaryHeap::with_capacity(n)),
            waiters: RefCell::new(BTreeSet::new()),
            wake_seq: Cell::new(0),
            sps: UnsafeCell::new(vec![0; n + 1]),
            panic: RefCell::new(None),
            n_done: Cell::new(0),
        })
    }

    fn n(&self) -> usize {
        self.slots.borrow().len()
    }

    fn next_seq(&self) -> u64 {
        let s = self.wake_seq.get();
        self.wake_seq.set(s + 1);
        s
    }

    fn push_runnable(&self, rank: usize, clock_bits: u64) {
        self.runnable
            .borrow_mut()
            .push(Reverse((clock_bits, rank, self.next_seq())));
    }

    /// Swap pointers for entering task `rank` from the scheduler, or
    /// (with the roles flipped) for leaving it.
    fn sp_ptrs(&self, save_idx: usize, load_idx: usize) -> (*mut usize, *const usize) {
        let v = self.sps.get();
        unsafe {
            let base = (*v).as_mut_ptr();
            (base.add(save_idx), base.add(load_idx) as *const usize)
        }
    }

    /// Parks the current task until a message matching `pattern` is
    /// queued. All RefCell borrows are released before switching.
    fn block_on_message(&self, rank: usize, pattern: Pattern, clock: VTime) {
        {
            let mut slots = self.slots.borrow_mut();
            let slot = &mut slots[rank];
            slot.clock_bits = clock.as_secs().to_bits();
            slot.state = TaskState::Blocked {
                pattern,
                deadline_bits: None,
                timed_out: false,
            };
        }
        self.yield_to_scheduler(rank);
    }

    /// Parks the current task until a match arrives or the scheduler
    /// declares the deadline missed at quiescence. Returns `true` on a
    /// miss.
    fn block_with_deadline(
        &self,
        rank: usize,
        pattern: Pattern,
        deadline: VTime,
        clock: VTime,
    ) -> bool {
        let bits = deadline.as_secs().to_bits();
        {
            let mut slots = self.slots.borrow_mut();
            let slot = &mut slots[rank];
            slot.clock_bits = clock.as_secs().to_bits();
            slot.state = TaskState::Blocked {
                pattern,
                deadline_bits: Some(bits),
                timed_out: false,
            };
        }
        self.waiters.borrow_mut().insert((bits, rank));
        self.yield_to_scheduler(rank);
        let mut slots = self.slots.borrow_mut();
        match &mut slots[rank].state {
            TaskState::Running => false,
            TaskState::Blocked { timed_out, .. } => {
                let missed = *timed_out;
                debug_assert!(missed, "resumed while still blocked without a timeout");
                slots[rank].state = TaskState::Running;
                missed
            }
            other => unreachable!("deadline waiter resumed in state {other:?}"),
        }
    }

    /// Sender-side wakeup: if `dst` is parked and the freshly delivered
    /// message satisfies its pattern, move it to the runnable heap.
    fn notify_delivery(&self, dst: usize, world: &World) {
        let mut slots = self.slots.borrow_mut();
        let slot = &mut slots[dst];
        if let TaskState::Blocked {
            pattern,
            deadline_bits,
            ..
        } = slot.state
        {
            if world.mailbox(dst).has_match(pattern) {
                if let Some(bits) = deadline_bits {
                    self.waiters.borrow_mut().remove(&(bits, dst));
                }
                slot.state = TaskState::Running;
                let clock_bits = slot.clock_bits;
                drop(slots);
                self.push_runnable(dst, clock_bits);
            }
        }
    }

    fn yield_to_scheduler(&self, rank: usize) {
        let n = self.n();
        let (save, load) = self.sp_ptrs(rank, n);
        unsafe { ctx_swap(save, load) };
    }

    /// Marks the current task finished and switches away forever.
    fn finish(&self, rank: usize) {
        self.slots.borrow_mut()[rank].state = TaskState::Done;
        self.n_done.set(self.n_done.get() + 1);
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send + 'static>) {
        let mut p = self.panic.borrow_mut();
        if p.is_none() {
            *p = Some(payload);
        }
    }
}

impl TaskHandle {
    /// Cooperative receive: probe, park, repeat. `next` re-probes the
    /// mailbox after every wakeup because the scheduler only guarantees
    /// a match existed at notify time.
    pub(crate) fn block_on_message(&self, pattern: Pattern, clock: VTime) {
        self.rt.block_on_message(self.rank, pattern, clock);
    }

    /// Deadline variant; returns `true` when the wait was declared
    /// missed at quiescence.
    pub(crate) fn block_with_deadline(
        &self,
        pattern: Pattern,
        deadline: VTime,
        clock: VTime,
    ) -> bool {
        self.rt
            .block_with_deadline(self.rank, pattern, deadline, clock)
    }

    /// Called by senders after `Mailbox::deliver`.
    pub(crate) fn notify_delivery(&self, dst: usize, world: &World) {
        self.rt.notify_delivery(dst, world);
    }
}

// ---------------------------------------------------------------------
// Task entry and the scheduler loop
// ---------------------------------------------------------------------

/// Everything a task needs, boxed and passed through the entry thunk as
/// a raw pointer. The raw `f`/`result` pointers outlive the task: both
/// point into `run_event`'s frame, which cannot return before every
/// task is `Done`.
struct TaskData<F, R> {
    rank: usize,
    world: Arc<World>,
    rt: Rc<EventRt>,
    f: *const F,
    result: *mut Option<R>,
}

/// Runs on the task's own stack; never returns (the final swap leaves
/// the coroutine forever).
extern "C" fn task_entry<F, R>(raw: *mut u8)
where
    F: Fn(&mut Ctx) -> R,
{
    let data: Box<TaskData<F, R>> = unsafe { Box::from_raw(raw.cast()) };
    let rank = data.rank;
    let rt = Rc::clone(&data.rt);
    {
        let handle = TaskHandle {
            rt: Rc::clone(&rt),
            rank,
        };
        let mut ctx = Ctx::for_event_task(rank, &data.world, handle);
        let f: &F = unsafe { &*data.f };
        match catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
            Ok(r) => unsafe { *data.result = Some(r) },
            Err(payload) => rt.record_panic(payload),
        }
    }
    drop(data);
    rt.finish(rank);
    let n = rt.n();
    let (save, load) = rt.sp_ptrs(rank, n);
    // The swap targets live in run_event's Rc; drop ours first so the
    // coroutine holds nothing when it parks for good.
    drop(rt);
    unsafe { ctx_swap(save, load) };
    unreachable!("finished task was resumed");
}

fn stack_size_bytes() -> usize {
    let kib = std::env::var("MCCIO_STACK_KIB")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_STACK_KIB)
        .max(MIN_STACK_KIB);
    kib * 1024
}

/// Stacks whose pages came from the thread's cached slab vs stacks that
/// required a fresh (zeroed, to-be-faulted) slab allocation, process
/// cumulative. See [`slab_stats`].
static STACKS_REUSED: AtomicU64 = AtomicU64::new(0);
static STACKS_FRESH: AtomicU64 = AtomicU64::new(0);

/// Process-cumulative slab reuse counters; see [`slab_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Task stacks carved from a previously committed slab.
    pub reused: u64,
    /// Task stacks that came from a fresh allocation (first-touch page
    /// faults still ahead of them).
    pub fresh: u64,
}

/// How many task stacks were served from a recycled slab versus freshly
/// committed, cumulative over the process. The event executor keeps one
/// committed slab per driving thread and reuses it across `World::run`
/// calls whenever it is large enough, so repeated runs (benchmarks,
/// test suites, multi-phase jobs) stop paying the slab's first-touch
/// page faults after the first run.
#[must_use]
pub fn slab_stats() -> SlabStats {
    SlabStats {
        reused: STACKS_REUSED.load(Ordering::Relaxed),
        fresh: STACKS_FRESH.load(Ordering::Relaxed),
    }
}

thread_local! {
    /// The thread's cached stack slab (committed pages from the last
    /// `run_event` on this thread). Taken at entry, returned on the
    /// clean exit path; runs that panic abandon their slab because
    /// suspended sibling stacks inside it were leaked mid-frame.
    static SLAB_CACHE: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` once per rank as cooperative tasks over virtual time and
/// returns the per-rank results in rank order. Panics from rank code are
/// rethrown on the calling thread (suspended sibling stacks are
/// abandoned on that path, leaking their live objects — acceptable for
/// a failing run).
pub(crate) fn run_event<F, R>(world: &Arc<World>, f: F) -> Vec<R>
where
    F: Fn(&mut Ctx) -> R + Send + Sync,
    R: Send,
{
    // `World::run` only routes here on supported targets; this backstop
    // covers direct callers on an unsupported one (a compile-time assert
    // would reject unsupported targets even when the threaded fallback
    // is the one in use).
    if !SUPPORTED {
        panic!("event executor unsupported on this target");
    }
    let n = world.n_ranks();
    let rt = EventRt::new(n);
    let stack = stack_size_bytes();
    let need = n.checked_mul(stack).expect("stack slab size overflow");
    // One slab, lazily committed by the OS page by page: individual
    // mappings would trip vm.max_map_count near 100k ranks. A slab that
    // served an earlier run on this thread is reused as-is when large
    // enough — its pages are already committed, so repeat runs skip the
    // first-touch fault storm entirely. Stale bytes in a reused slab
    // are fine: `init_stack` writes every word a resumed task reads.
    let cached = SLAB_CACHE.with(|c| c.take());
    let mut slab = if cached.len() >= need {
        STACKS_REUSED.fetch_add(n as u64, Ordering::Relaxed);
        cached
    } else {
        STACKS_FRESH.fetch_add(n as u64, Ordering::Relaxed);
        vec![0u8; need]
    };
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();

    for (rank, (region, result)) in slab[..need].chunks_mut(stack).zip(&mut results).enumerate() {
        region[..8].copy_from_slice(&STACK_CANARY.to_ne_bytes());
        let data = Box::new(TaskData::<F, R> {
            rank,
            world: Arc::clone(world),
            rt: Rc::clone(&rt),
            f: &raw const f,
            result: &raw mut *result,
        });
        let sp = init_stack(region, task_entry::<F, R>, Box::into_raw(data).cast());
        // No task is running yet: the exclusive reference cannot alias
        // a ctx_swap-held pointer.
        unsafe { (&mut *rt.sps.get())[rank] = sp };
        rt.push_runnable(rank, 0);
    }

    loop {
        // Scheduler work (heap pop, quiescence resolution, slot
        // bookkeeping) is host-profiled per iteration; the guard drops
        // before the switch so the task's own run time is not charged.
        let sched_t = hostprof::timer(HostPhase::ExecSchedule);
        let next = rt.runnable.borrow_mut().pop();
        let Some(Reverse((_, rank, _))) = next else {
            if rt.n_done.get() == n {
                break;
            }
            // Quiescence: nothing can run, so every queued deadline wait
            // is now provably silent. Wake the earliest; it resumes with
            // `timed_out` and re-enters the heap.
            let woken = {
                let mut waiters = rt.waiters.borrow_mut();
                let first = waiters.iter().next().copied();
                first.inspect(|w| {
                    waiters.remove(w);
                })
            };
            match woken {
                Some((_, rank)) => {
                    let clock_bits = {
                        let mut slots = rt.slots.borrow_mut();
                        match &mut slots[rank].state {
                            TaskState::Blocked { timed_out, .. } => *timed_out = true,
                            other => unreachable!("waiter in state {other:?}"),
                        }
                        slots[rank].clock_bits
                    };
                    rt.push_runnable(rank, clock_bits);
                    continue;
                }
                None => deadlock_panic(&rt),
            }
        };
        {
            let mut slots = rt.slots.borrow_mut();
            match slots[rank].state {
                TaskState::Done => continue,
                // A quiescence-woken deadline waiter keeps its Blocked
                // state so block_with_deadline can read the timed_out
                // flag after the resume.
                TaskState::Blocked {
                    timed_out: true, ..
                } => {}
                ref mut s => *s = TaskState::Running,
            }
        }
        let (save, load) = rt.sp_ptrs(n, rank);
        drop(sched_t);
        unsafe { ctx_swap(save, load) };
        if rt.panic.borrow().is_some() {
            break;
        }
    }

    for (rank, region) in slab[..need].chunks(stack).enumerate() {
        assert_eq!(
            u64::from_ne_bytes(region[..8].try_into().unwrap()),
            STACK_CANARY,
            "rank {rank} overflowed its {stack}-byte task stack; \
             raise MCCIO_STACK_KIB"
        );
    }
    if let Some(payload) = rt.panic.borrow_mut().take() {
        resume_unwind(payload);
    }
    // Clean exit: every task unwound its own stack, so the slab holds
    // nothing live and its committed pages can serve the next run.
    SLAB_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() < slab.len() {
            *cache = slab;
        }
    });
    world.check_drained();
    results
        .into_iter()
        .map(|r| r.expect("every rank produced a result"))
        .collect()
}

fn deadlock_panic(rt: &EventRt) -> ! {
    let slots = rt.slots.borrow();
    let blocked: Vec<String> = slots
        .iter()
        .enumerate()
        .filter_map(|(rank, s)| match &s.state {
            TaskState::Blocked { pattern, .. } => Some(format!(
                "rank {rank} waiting on (src {:?}, tag {:#x})",
                pattern.src, pattern.tag
            )),
            _ => None,
        })
        .collect();
    panic!(
        "event executor deadlock: {} of {} tasks blocked with no runnable task and \
         no deadline waiter: [{}]",
        blocked.len(),
        slots.len(),
        blocked.join(", ")
    );
}
