//! The SPMD rank engine.
//!
//! [`World::run`] executes one closure per rank, each on its own OS
//! thread, exactly like `mpiexec` launches one process per core. Ranks
//! communicate through [`Ctx`]: point-to-point sends/receives and (in
//! `collective.rs`) MPI-style collectives.
//!
//! ## Virtual time
//!
//! Each rank carries a logical clock. A *costed* send advances the
//! sender by the per-message software overhead and stamps the envelope
//! with its departure time; the matching receive advances the receiver to
//! `max(receiver clock, departure + transfer time)` using the
//! [`CostModel`]'s point-to-point price. *Control* messages (driver
//! metadata whose real-world cost is priced analytically by the phase
//! model) carry causality only: the receiver advances to the departure
//! time but pays no transfer cost. Wall-clock never enters either path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mccio_sim::cost::CostModel;
use mccio_sim::time::{VDuration, VTime};
use mccio_sim::topology::Placement;
use mccio_sim::{SimError, SimResult};

use crate::mailbox::{Envelope, Mailbox, Pattern};

/// Aggregate traffic counters, updated on every delivery.
#[derive(Debug, Default)]
pub struct Traffic {
    /// Bytes moved between ranks on the same node (data plane).
    pub intra_bytes: AtomicU64,
    /// Bytes moved between ranks on different nodes (data plane).
    pub inter_bytes: AtomicU64,
    /// Data-plane message count.
    pub data_msgs: AtomicU64,
    /// Control-plane message count (metadata, barriers, clock sync).
    pub ctl_msgs: AtomicU64,
    /// Per-node NIC ingress bytes (data plane, inter-node only).
    pub node_ingress: Vec<AtomicU64>,
    /// Per-node NIC egress bytes (data plane, inter-node only).
    pub node_egress: Vec<AtomicU64>,
}

/// A point-in-time copy of [`Traffic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Bytes moved intra-node.
    pub intra_bytes: u64,
    /// Bytes moved inter-node.
    pub inter_bytes: u64,
    /// Data-plane messages.
    pub data_msgs: u64,
    /// Control-plane messages.
    pub ctl_msgs: u64,
    /// Per-node ingress bytes.
    pub node_ingress: Vec<u64>,
    /// Per-node egress bytes.
    pub node_egress: Vec<u64>,
}

impl Traffic {
    fn new(n_nodes: usize) -> Self {
        Traffic {
            node_ingress: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            node_egress: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            ..Traffic::default()
        }
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            intra_bytes: self.intra_bytes.load(Ordering::Relaxed),
            inter_bytes: self.inter_bytes.load(Ordering::Relaxed),
            data_msgs: self.data_msgs.load(Ordering::Relaxed),
            ctl_msgs: self.ctl_msgs.load(Ordering::Relaxed),
            node_ingress: self
                .node_ingress
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            node_egress: self
                .node_egress
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The shared communication world: one mailbox per rank plus the cost
/// model and placement every rank prices messages against.
#[derive(Debug)]
pub struct World {
    placement: Placement,
    cost: CostModel,
    mailboxes: Vec<Mailbox>,
    traffic: Traffic,
    /// Extra latency on every control-plane message, stored as f64 bits
    /// so fault plans can set it after the world is shared. Zero when no
    /// faults are injected.
    ctl_delay_bits: AtomicU64,
}

impl World {
    /// Builds a world for `placement` priced by `cost`.
    #[must_use]
    pub fn new(cost: CostModel, placement: Placement) -> Arc<World> {
        let n_ranks = placement.n_ranks();
        let n_nodes = placement.n_nodes();
        Arc::new(World {
            placement,
            cost,
            mailboxes: (0..n_ranks).map(|_| Mailbox::new()).collect(),
            traffic: Traffic::new(n_nodes),
            ctl_delay_bits: AtomicU64::new(0.0_f64.to_bits()),
        })
    }

    /// Sets the control-message delay injected on every subsequent
    /// [`Ctx::send_ctl`] (fault modelling: slow management network).
    pub fn set_ctl_delay(&self, delay: VDuration) {
        self.ctl_delay_bits
            .store(delay.as_secs().to_bits(), Ordering::Relaxed);
    }

    /// The currently injected control-message delay.
    #[must_use]
    pub fn ctl_delay(&self) -> VDuration {
        VDuration::from_secs(f64::from_bits(self.ctl_delay_bits.load(Ordering::Relaxed)))
    }

    /// Number of ranks.
    #[must_use]
    pub fn n_ranks(&self) -> usize {
        self.placement.n_ranks()
    }

    /// The placement ranks were launched with.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The cost model pricing this world's messages.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Traffic counters (live; use [`Traffic::snapshot`]).
    #[must_use]
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Runs `f` once per rank, each on its own thread, and returns the
    /// per-rank results in rank order.
    ///
    /// # Panics
    /// Propagates any rank's panic after all threads have been joined,
    /// and panics if any mailbox still holds unmatched messages at exit
    /// (a protocol bug in the caller).
    pub fn run<F, R>(self: &Arc<Self>, f: F) -> Vec<R>
    where
        F: Fn(&mut Ctx) -> R + Send + Sync,
        R: Send,
    {
        let n = self.n_ranks();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, slot) in results.iter_mut().enumerate() {
                let world = Arc::clone(self);
                let f = &f;
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(1 << 21)
                    .spawn_scoped(scope, move || {
                        let mut ctx = Ctx {
                            rank,
                            node: world.placement.node_of(rank),
                            world: Arc::clone(&world),
                            clock: VTime::ZERO,
                        };
                        *slot = Some(f(&mut ctx));
                    })
                    .expect("spawn rank thread");
                handles.push(handle);
            }
        });
        for (rank, mb) in self.mailboxes.iter().enumerate() {
            assert_eq!(
                mb.pending(),
                0,
                "rank {rank} exited with unmatched messages queued"
            );
        }
        results
            .into_iter()
            .map(|r| r.expect("every rank produced a result"))
            .collect()
    }
}

/// A rank's handle to the world: identity, clock, and communication.
#[derive(Debug)]
pub struct Ctx {
    rank: usize,
    node: usize,
    world: Arc<World>,
    clock: VTime,
}

impl Ctx {
    /// This rank's id, `0..size`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[must_use]
    pub fn size(&self) -> usize {
        self.world.n_ranks()
    }

    /// The node hosting this rank.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// The world-wide placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        self.world.placement()
    }

    /// The cost model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        self.world.cost()
    }

    /// The shared world (for handing to helpers).
    #[must_use]
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Current virtual time at this rank.
    #[must_use]
    pub fn clock(&self) -> VTime {
        self.clock
    }

    /// Advances the local clock by `d` (local compute, buffer packing,
    /// waiting for I/O).
    pub fn advance(&mut self, d: VDuration) {
        self.clock += d;
    }

    /// Moves the clock forward to `t` if `t` is later (phase-end
    /// synchronization). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: VTime) {
        self.clock = self.clock.max(t);
    }

    /// Charges the time to stream `bytes` through this node's DRAM once
    /// (memcpy-style local work), under memory-pressure `factor`.
    pub fn charge_local_copy(&mut self, bytes: u64, factor: f64) {
        let d = self.world.cost().local_copy(self.node, bytes, factor);
        self.clock += d;
    }

    fn account(&self, dst: usize, bytes: u64, costed: bool) {
        let t = &self.world.traffic;
        if !costed {
            t.ctl_msgs.fetch_add(1, Ordering::Relaxed);
            return;
        }
        t.data_msgs.fetch_add(1, Ordering::Relaxed);
        let dst_node = self.world.placement.node_of(dst);
        if dst_node == self.node {
            t.intra_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            t.inter_bytes.fetch_add(bytes, Ordering::Relaxed);
            t.node_egress[self.node].fetch_add(bytes, Ordering::Relaxed);
            t.node_ingress[dst_node].fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Sends a data-plane message: the sender pays injection overhead and
    /// the receiver will pay the transfer.
    pub fn send(&mut self, dst: usize, tag: u32, payload: Vec<u8>) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        self.clock += VDuration::from_secs(self.world.cost.per_message_overhead);
        self.account(dst, payload.len() as u64, true);
        self.world.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            payload,
            depart: self.clock,
            costed: true,
        });
    }

    /// Sends a control-plane message: causality only, no transfer cost
    /// (the bulk-data phases it coordinates are priced analytically).
    pub fn send_ctl(&mut self, dst: usize, tag: u32, payload: Vec<u8>) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        self.account(dst, payload.len() as u64, false);
        // An injected control-network delay shifts the departure stamp:
        // the receiver's causality rule (max with depart) then charges it
        // in virtual time without any wall-clock sleeping.
        let depart = self.clock + self.world.ctl_delay();
        self.world.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            payload,
            depart,
            costed: false,
        });
    }

    fn settle(&mut self, env: &Envelope) {
        if env.costed {
            let src_node = self.world.placement.node_of(env.src);
            let d = self.world.cost.pt2pt(
                env.payload.len() as u64,
                src_node == self.node,
                src_node,
                self.node,
            );
            self.clock = self.clock.max(env.depart + d);
        } else {
            self.clock = self.clock.max(env.depart);
        }
    }

    /// Blocks for a message from `src` with `tag`; returns the payload.
    pub fn recv(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let env = self.world.mailboxes[self.rank].recv(Pattern {
            src: Some(src),
            tag,
        });
        self.settle(&env);
        env.payload
    }

    /// Blocks for a message with `tag` from any source; returns
    /// `(src, payload)`.
    pub fn recv_any(&mut self, tag: u32) -> (usize, Vec<u8>) {
        let env = self.world.mailboxes[self.rank].recv(Pattern { src: None, tag });
        self.settle(&env);
        (env.src, env.payload)
    }

    /// Deadline-bounded receive from `src`: the failure-detection
    /// primitive. If a matching message arrives it is settled and
    /// returned exactly like [`Ctx::recv`]; otherwise the clock advances
    /// to `deadline` — the virtual-time price of waiting out the timeout
    /// — and [`SimError::RankFailed`] names the silent peer.
    ///
    /// Determinism caveat: the miss arm is detected by a short
    /// *wall-clock* parking budget, so callers must only probe peers
    /// whose silence is already decided by shared data (the fault plan's
    /// crash schedule at an agreed virtual time). The engine's crash
    /// tracker honors this: it probes on a tag nothing ever sends on,
    /// and only ranks every peer has independently declared dead.
    ///
    /// # Errors
    /// [`SimError::RankFailed`] when no matching message arrived.
    pub fn recv_deadline(&mut self, src: usize, tag: u32, deadline: VTime) -> SimResult<Vec<u8>> {
        const DETECT_WALL_BUDGET: std::time::Duration = std::time::Duration::from_millis(2);
        let got = self.world.mailboxes[self.rank].recv_budgeted(
            Pattern {
                src: Some(src),
                tag,
            },
            DETECT_WALL_BUDGET,
        );
        match got {
            Some(env) => {
                self.settle(&env);
                Ok(env.payload)
            }
            None => {
                self.advance_to(deadline);
                Err(SimError::RankFailed { rank: src })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccio_sim::topology::{test_cluster, FillOrder};
    use mccio_sim::units::MIB;

    fn world(nodes: usize, cores: usize, ranks: usize) -> Arc<World> {
        let cluster = test_cluster(nodes, cores);
        let placement = Placement::new(&cluster, ranks, FillOrder::Block).unwrap();
        World::new(CostModel::new(cluster), placement)
    }

    #[test]
    fn ping_pong_moves_data_and_time() {
        let w = world(2, 1, 2);
        let results = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![42; 1024]);
                let back = ctx.recv(1, 2);
                (back.len(), ctx.clock().as_secs())
            } else {
                let msg = ctx.recv(0, 1);
                ctx.send(0, 2, msg);
                (0, ctx.clock().as_secs())
            }
        });
        assert_eq!(results[0].0, 1024);
        // Two inter-node hops: time strictly positive on both ranks.
        assert!(results[0].1 > 0.0);
        assert!(results[1].1 > 0.0);
        let t = w.traffic().snapshot();
        assert_eq!(t.data_msgs, 2);
        assert_eq!(t.inter_bytes, 2048);
        assert_eq!(t.node_egress[0], 1024);
        assert_eq!(t.node_ingress[0], 1024);
    }

    #[test]
    fn control_messages_carry_causality_without_cost() {
        let w = world(2, 1, 2);
        let results = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.advance(VDuration::from_secs(5.0));
                ctx.send_ctl(1, 9, vec![]);
                ctx.clock().as_secs()
            } else {
                let _ = ctx.recv(0, 9);
                ctx.clock().as_secs()
            }
        });
        // Receiver is pulled forward to the sender's clock, exactly.
        assert_eq!(results[1], 5.0);
        assert_eq!(w.traffic().snapshot().ctl_msgs, 1);
        assert_eq!(w.traffic().snapshot().inter_bytes, 0);
    }

    #[test]
    fn injected_ctl_delay_shifts_causality() {
        let w = world(2, 1, 2);
        w.set_ctl_delay(VDuration::from_secs(0.25));
        let results = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.advance(VDuration::from_secs(1.0));
                ctx.send_ctl(1, 9, vec![]);
            } else {
                let _ = ctx.recv(0, 9);
            }
            ctx.clock().as_secs()
        });
        assert_eq!(results[1], 1.25, "receiver pays the injected delay");
        assert_eq!(results[0], 1.0, "sender does not");
    }

    #[test]
    fn costed_transfer_advances_receiver_by_bandwidth() {
        let w = world(2, 1, 2);
        let results = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, vec![0u8; MIB as usize]);
            } else {
                let _ = ctx.recv(0, 3);
            }
            ctx.clock().as_secs()
        });
        // 1 MiB over 1 GiB/s link ≈ ~1 ms at the receiver.
        assert!(results[1] > 0.9e-3 && results[1] < 1.5e-3, "{}", results[1]);
        // Sender only paid injection overhead.
        assert!(results[0] < 1e-4);
    }

    #[test]
    fn results_are_in_rank_order() {
        let w = world(2, 4, 8);
        let results = w.run(|ctx| ctx.rank() * 10);
        assert_eq!(results, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn local_copy_charges_dram_time() {
        let w = world(1, 1, 1);
        let r = w.run(|ctx| {
            ctx.charge_local_copy(10 * MIB, 1.0);
            let healthy = ctx.clock().as_secs();
            ctx.charge_local_copy(10 * MIB, 4.0);
            (healthy, ctx.clock().as_secs() - healthy)
        });
        let (healthy, thrashed) = r[0];
        assert!((thrashed / healthy - 4.0).abs() < 1e-9);
    }

    #[test]
    fn recv_any_reports_source() {
        let w = world(1, 4, 4);
        let r = w.run(|ctx| {
            if ctx.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    let (src, _) = ctx.recv_any(7);
                    seen.push(src);
                }
                seen.sort_unstable();
                seen
            } else {
                ctx.send(0, 7, vec![ctx.rank() as u8]);
                vec![]
            }
        });
        assert_eq!(r[0], vec![1, 2, 3]);
    }

    #[test]
    fn recv_deadline_charges_the_timeout_on_silence() {
        let w = world(1, 2, 2);
        let r = w.run(|ctx| {
            if ctx.rank() == 0 {
                // Rank 1 never sends on tag 77: the deadline must expire
                // and the clock must land exactly on it.
                let deadline = ctx.clock() + VDuration::from_secs(0.5);
                let err = ctx.recv_deadline(1, 77, deadline).unwrap_err();
                assert_eq!(err, mccio_sim::SimError::RankFailed { rank: 1 });
                ctx.clock().as_secs()
            } else {
                0.0
            }
        });
        assert_eq!(r[0], 0.5);
    }

    #[test]
    fn recv_deadline_delivers_a_present_message() {
        let w = world(1, 2, 2);
        let r = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_ctl(1, 78, vec![9]);
                ctx.barrier();
                0
            } else {
                // The barrier orders the send before the probe, so the
                // match is already queued: no wall-clock race.
                ctx.barrier();
                let deadline = ctx.clock() + VDuration::from_secs(10.0);
                let payload = ctx.recv_deadline(0, 78, deadline).unwrap();
                assert!(
                    ctx.clock().as_secs() < 10.0,
                    "delivery must not charge the deadline"
                );
                payload[0]
            }
        });
        assert_eq!(r[1], 9);
    }

    #[test]
    #[should_panic(expected = "unmatched messages")]
    fn leaked_message_is_detected() {
        let w = world(1, 2, 2);
        let _ = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_ctl(1, 99, vec![1]);
            }
            // rank 1 never receives.
        });
    }
}
