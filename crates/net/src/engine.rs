//! The SPMD rank engine.
//!
//! [`World::run`] executes one closure per rank, exactly like `mpiexec`
//! launches one process per core. Two executors implement that contract
//! ([`ExecutorKind`]): the *threaded* engine gives every rank its own OS
//! thread and blocks on condition variables — simple, parallel, and the
//! differential-testing oracle — while the *event* engine runs every
//! rank as a cooperative task over virtual time on one thread, which is
//! what makes 10k–100k rank worlds practical. Ranks communicate through
//! [`Ctx`] either way: point-to-point sends/receives and (in
//! `collective.rs`) MPI-style collectives.
//!
//! ## Virtual time
//!
//! Each rank carries a logical clock. A *costed* send advances the
//! sender by the per-message software overhead and stamps the envelope
//! with its departure time; the matching receive advances the receiver to
//! `max(receiver clock, departure + transfer time)` using the
//! [`CostModel`]'s point-to-point price. *Control* messages (driver
//! metadata whose real-world cost is priced analytically by the phase
//! model) carry causality only: the receiver advances to the departure
//! time but pays no transfer cost. Wall-clock never enters either path,
//! which is why both executors produce bit-identical times.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mccio_sim::cost::CostModel;
use mccio_sim::sync::Mutex;
use mccio_sim::time::{VDuration, VTime};
use mccio_sim::topology::Placement;
use mccio_sim::{SimError, SimResult};

use crate::executor::{self, TaskHandle};
use crate::mailbox::{Envelope, Mailbox, Pattern, Payload};

/// Which engine drives the ranks of a [`World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// One OS thread per rank (the original engine). Parallel and
    /// preemptive; practical to a few thousand ranks.
    Threads,
    /// Discrete-event cooperative scheduler: every rank is a resumable
    /// task on one thread, resumed smallest-virtual-clock first.
    /// Practical to 100k ranks.
    Event,
}

impl ExecutorKind {
    /// Reads the `MCCIO_EXECUTOR` override (`threads` or `event`);
    /// `None` when unset or empty.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo silently falling back
    /// to the default would invalidate a scaling experiment.
    #[must_use]
    pub fn from_env() -> Option<ExecutorKind> {
        let raw = std::env::var("MCCIO_EXECUTOR").ok()?;
        match raw.trim().to_ascii_lowercase().as_str() {
            "" => None,
            "threads" | "thread" => Some(ExecutorKind::Threads),
            "event" => Some(ExecutorKind::Event),
            other => panic!("MCCIO_EXECUTOR must be `threads` or `event`, got {other:?}"),
        }
    }
}

/// Aggregate traffic counters, updated on every delivery.
#[derive(Debug)]
pub struct Traffic {
    /// Bytes moved between ranks on the same node (data plane).
    pub intra_bytes: AtomicU64,
    /// Bytes moved between ranks on different nodes (data plane).
    pub inter_bytes: AtomicU64,
    /// Data-plane message count.
    pub data_msgs: AtomicU64,
    /// Control-plane message count (metadata, barriers, clock sync).
    pub ctl_msgs: AtomicU64,
    /// Per-node NIC counters, allocated on the first inter-node byte so
    /// control-plane-only worlds never pay O(nodes) memory.
    node_flows: OnceLock<NodeFlows>,
    n_nodes: usize,
}

#[derive(Debug)]
struct NodeFlows {
    ingress: Box<[AtomicU64]>,
    egress: Box<[AtomicU64]>,
}

impl NodeFlows {
    fn new(n_nodes: usize) -> NodeFlows {
        NodeFlows {
            ingress: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
            egress: (0..n_nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A point-in-time copy of [`Traffic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficSnapshot {
    /// Bytes moved intra-node.
    pub intra_bytes: u64,
    /// Bytes moved inter-node.
    pub inter_bytes: u64,
    /// Data-plane messages.
    pub data_msgs: u64,
    /// Control-plane messages.
    pub ctl_msgs: u64,
    /// Per-node ingress bytes.
    pub node_ingress: Vec<u64>,
    /// Per-node egress bytes.
    pub node_egress: Vec<u64>,
}

impl Traffic {
    fn new(n_nodes: usize) -> Self {
        Traffic {
            intra_bytes: AtomicU64::new(0),
            inter_bytes: AtomicU64::new(0),
            data_msgs: AtomicU64::new(0),
            ctl_msgs: AtomicU64::new(0),
            node_flows: OnceLock::new(),
            n_nodes,
        }
    }

    /// Counts one data-plane message of `bytes` from `src_node` to
    /// `dst_node`, maintaining the per-node NIC counters for the
    /// inter-node case.
    pub(crate) fn account_data(&self, src_node: usize, dst_node: usize, bytes: u64) {
        self.data_msgs.fetch_add(1, Ordering::Relaxed);
        if src_node == dst_node {
            self.intra_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.inter_bytes.fetch_add(bytes, Ordering::Relaxed);
            let flows = self.node_flows.get_or_init(|| NodeFlows::new(self.n_nodes));
            flows.egress[src_node].fetch_add(bytes, Ordering::Relaxed);
            flows.ingress[dst_node].fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> TrafficSnapshot {
        let load = |v: &[AtomicU64]| v.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        let (node_ingress, node_egress) = match self.node_flows.get() {
            Some(flows) => (load(&flows.ingress), load(&flows.egress)),
            None => (vec![0; self.n_nodes], vec![0; self.n_nodes]),
        };
        TrafficSnapshot {
            intra_bytes: self.intra_bytes.load(Ordering::Relaxed),
            inter_bytes: self.inter_bytes.load(Ordering::Relaxed),
            data_msgs: self.data_msgs.load(Ordering::Relaxed),
            ctl_msgs: self.ctl_msgs.load(Ordering::Relaxed),
            node_ingress,
            node_egress,
        }
    }
}

/// How many decoded-payload entries a world retains. Collective I/O
/// keeps at most a couple of broadcast buffers live per operation, so a
/// small ring is ample; the cap only bounds memory if a caller streams
/// many distinct broadcasts through one world.
const DECODE_CACHE_CAP: usize = 16;

/// Per-world cache of values decoded from shared broadcast buffers,
/// keyed by buffer *identity* (`Arc::ptr_eq`). Every receiver of a
/// broadcast holds a clone of the same allocation, so the first rank to
/// decode it does the work once and the other `n - 1` ranks reuse the
/// result — turning per-rank O(ranks) decode CPU into per-world O(ranks).
/// Entries keep the keyed `Arc` alive, which is what makes pointer
/// comparison sound: a live key can never be a recycled allocation.
#[derive(Default)]
struct DecodeCache {
    entries: Mutex<Vec<DecodeEntry>>,
}

/// One cached decode: the shared packed buffer (the identity key) and
/// the type-erased decoded value.
type DecodeEntry = (Arc<[u8]>, Arc<dyn Any + Send + Sync>);

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field("entries", &self.entries.lock().len())
            .finish()
    }
}

/// The shared communication world: one mailbox per rank plus the cost
/// model and placement every rank prices messages against.
#[derive(Debug)]
pub struct World {
    placement: Placement,
    cost: CostModel,
    mailboxes: Vec<Mailbox>,
    traffic: Traffic,
    executor: ExecutorKind,
    decode_cache: DecodeCache,
    /// World-level byte-buffer recycler: payload and assembly buffers
    /// retired by one operation serve the next, so the steady-state hot
    /// path allocates nothing (see [`crate::recycle`]).
    recycle: Arc<crate::recycle::BytePool>,
    /// The full-world rank set, built once and shared: per-op
    /// `RankSet::world(n)` calls are an O(ranks) allocation per rank
    /// that dominated collective prologues at 10k+ ranks.
    world_set: std::sync::OnceLock<Arc<crate::group::RankSet>>,
    /// Extra latency on every control-plane message, stored as f64 bits
    /// so fault plans can set it after the world is shared. Zero when no
    /// faults are injected.
    ctl_delay_bits: AtomicU64,
    /// The installed message-causality observer, if any (see
    /// [`World::install_causal`]). Empty by default: the off path is
    /// one `OnceLock` load per send and a stamped-zero check per
    /// settle.
    causal: std::sync::OnceLock<Arc<dyn mccio_sim::causal::CausalSink>>,
}

impl World {
    /// Builds a world for `placement` priced by `cost`, driven by the
    /// `MCCIO_EXECUTOR` env override or the threaded engine by default.
    #[must_use]
    pub fn new(cost: CostModel, placement: Placement) -> Arc<World> {
        let kind = ExecutorKind::from_env().unwrap_or(ExecutorKind::Threads);
        World::with_executor(cost, placement, kind)
    }

    /// Builds a world driven by a specific executor, ignoring the env
    /// override — differential tests pin both engines this way.
    #[must_use]
    pub fn with_executor(
        cost: CostModel,
        placement: Placement,
        executor: ExecutorKind,
    ) -> Arc<World> {
        let n_ranks = placement.n_ranks();
        let n_nodes = placement.n_nodes();
        Arc::new(World {
            placement,
            cost,
            mailboxes: (0..n_ranks).map(|_| Mailbox::new()).collect(),
            traffic: Traffic::new(n_nodes),
            executor,
            decode_cache: DecodeCache::default(),
            recycle: Arc::new(crate::recycle::BytePool::for_ranks(n_ranks)),
            world_set: std::sync::OnceLock::new(),
            ctl_delay_bits: AtomicU64::new(0.0_f64.to_bits()),
            causal: std::sync::OnceLock::new(),
        })
    }

    /// Decodes a shared broadcast buffer once per world: the first caller
    /// for a given `packed` allocation runs `decode` and every later
    /// caller holding a clone of the same `Arc` gets the cached value.
    ///
    /// The lock is held across `decode`, so concurrent ranks under the
    /// threaded executor wait for the one decode instead of duplicating
    /// it. `decode` must be pure (same bytes, same value) — true of every
    /// wire decoder — or caching would change behaviour; and each buffer
    /// must always be decoded to one type, or hits degrade to misses.
    pub fn decode_shared<T: Send + Sync + 'static>(
        &self,
        packed: &Arc<[u8]>,
        decode: impl FnOnce(&[u8]) -> T,
    ) -> Arc<T> {
        let mut entries = self.decode_cache.entries.lock();
        if let Some((_, v)) = entries.iter().find(|(k, _)| Arc::ptr_eq(k, packed)) {
            if let Ok(hit) = Arc::clone(v).downcast::<T>() {
                return hit;
            }
        }
        let value = Arc::new(decode(packed));
        if entries.len() == DECODE_CACHE_CAP {
            entries.remove(0);
        }
        entries.push((
            Arc::clone(packed),
            Arc::clone(&value) as Arc<dyn Any + Send + Sync>,
        ));
        value
    }

    /// The executor driving this world's ranks.
    #[must_use]
    pub fn executor(&self) -> ExecutorKind {
        self.executor
    }

    /// Sets the control-message delay injected on every subsequent
    /// [`Ctx::send_ctl`] (fault modelling: slow management network).
    pub fn set_ctl_delay(&self, delay: VDuration) {
        self.ctl_delay_bits
            .store(delay.as_secs().to_bits(), Ordering::Relaxed);
    }

    /// The currently injected control-message delay.
    #[must_use]
    pub fn ctl_delay(&self) -> VDuration {
        VDuration::from_secs(f64::from_bits(self.ctl_delay_bits.load(Ordering::Relaxed)))
    }

    /// Installs a message-causality observer: every subsequent send and
    /// delivery settlement on this world is reported through it (see
    /// [`mccio_sim::causal::CausalSink`]). At most one observer per
    /// world — the first installation wins and later calls are ignored
    /// (returning `false`), so every rank of an SPMD program can call
    /// this idempotently before its first send. Messages sent before
    /// installation carry no causal stamp and are never reported.
    pub fn install_causal(&self, sink: Arc<dyn mccio_sim::causal::CausalSink>) -> bool {
        self.causal.set(sink).is_ok()
    }

    /// The installed causality observer, if any.
    #[must_use]
    pub fn causal(&self) -> Option<&Arc<dyn mccio_sim::causal::CausalSink>> {
        self.causal.get()
    }

    /// Number of ranks.
    #[must_use]
    pub fn n_ranks(&self) -> usize {
        self.placement.n_ranks()
    }

    /// The placement ranks were launched with.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The cost model pricing this world's messages.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Traffic counters (live; use [`Traffic::snapshot`]).
    #[must_use]
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// The world-level byte-buffer recycler (see [`crate::recycle`]).
    #[must_use]
    pub fn recycler(&self) -> &Arc<crate::recycle::BytePool> {
        &self.recycle
    }

    /// The rank set containing every rank, built once per world and
    /// shared — callers that need "all ranks" should clone this handle
    /// instead of materializing a fresh O(ranks) vector.
    #[must_use]
    pub fn rank_set(&self) -> &Arc<crate::group::RankSet> {
        self.world_set
            .get_or_init(|| Arc::new(crate::group::RankSet::world(self.n_ranks())))
    }

    pub(crate) fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    /// Asserts every mailbox drained — a queued leftover is a protocol
    /// bug in the caller. Both executors run this at shutdown.
    pub(crate) fn check_drained(&self) {
        for (rank, mb) in self.mailboxes.iter().enumerate() {
            assert_eq!(
                mb.pending(),
                0,
                "rank {rank} exited with unmatched messages queued"
            );
        }
    }

    /// Runs `f` once per rank — on its own thread or as a cooperative
    /// task, per [`World::executor`] — and returns the per-rank results
    /// in rank order. Virtual times, file hashes, and traffic are
    /// bit-identical across executors.
    ///
    /// # Panics
    /// Propagates any rank's panic after the world has wound down, and
    /// panics if any mailbox still holds unmatched messages at exit
    /// (a protocol bug in the caller).
    pub fn run<F, R>(self: &Arc<Self>, f: F) -> Vec<R>
    where
        F: Fn(&mut Ctx) -> R + Send + Sync,
        R: Send,
    {
        match self.executor {
            ExecutorKind::Threads => self.run_threads(f),
            ExecutorKind::Event if executor::SUPPORTED => executor::run_event(self, f),
            ExecutorKind::Event => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "mccio-net: event executor has no context-switch backend on this \
                         architecture; falling back to the threaded engine"
                    );
                });
                self.run_threads(f)
            }
        }
    }

    fn run_threads<F, R>(self: &Arc<Self>, f: F) -> Vec<R>
    where
        F: Fn(&mut Ctx) -> R + Send + Sync,
        R: Send,
    {
        let n = self.n_ranks();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, slot) in results.iter_mut().enumerate() {
                let world = Arc::clone(self);
                let f = &f;
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(1 << 21)
                    .spawn_scoped(scope, move || {
                        let mut ctx = Ctx {
                            rank,
                            node: world.placement.node_of(rank),
                            world: Arc::clone(&world),
                            clock: VTime::ZERO,
                            task: None,
                        };
                        *slot = Some(f(&mut ctx));
                    })
                    .expect("spawn rank thread");
                handles.push(handle);
            }
        });
        self.check_drained();
        results
            .into_iter()
            .map(|r| r.expect("every rank produced a result"))
            .collect()
    }
}

/// A rank's handle to the world: identity, clock, and communication.
#[derive(Debug)]
pub struct Ctx {
    rank: usize,
    node: usize,
    world: Arc<World>,
    clock: VTime,
    /// Present when this rank runs as a cooperative task: blocking
    /// receives yield to the scheduler through it instead of parking an
    /// OS thread.
    task: Option<TaskHandle>,
}

impl Ctx {
    pub(crate) fn for_event_task(rank: usize, world: &Arc<World>, task: TaskHandle) -> Ctx {
        Ctx {
            rank,
            node: world.placement.node_of(rank),
            world: Arc::clone(world),
            clock: VTime::ZERO,
            task: Some(task),
        }
    }

    /// This rank's id, `0..size`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[must_use]
    pub fn size(&self) -> usize {
        self.world.n_ranks()
    }

    /// The node hosting this rank.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// The world-wide placement.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        self.world.placement()
    }

    /// The cost model.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        self.world.cost()
    }

    /// The shared world (for handing to helpers).
    #[must_use]
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// The shared full-world rank set (see [`World::rank_set`]).
    #[must_use]
    pub fn world_ranks(&self) -> Arc<crate::group::RankSet> {
        Arc::clone(self.world.rank_set())
    }

    /// Current virtual time at this rank.
    #[must_use]
    pub fn clock(&self) -> VTime {
        self.clock
    }

    /// Advances the local clock by `d` (local compute, buffer packing,
    /// waiting for I/O).
    pub fn advance(&mut self, d: VDuration) {
        self.clock += d;
    }

    /// Moves the clock forward to `t` if `t` is later (phase-end
    /// synchronization). Never moves the clock backwards.
    pub fn advance_to(&mut self, t: VTime) {
        self.clock = self.clock.max(t);
    }

    /// Charges the time to stream `bytes` through this node's DRAM once
    /// (memcpy-style local work), under memory-pressure `factor`.
    pub fn charge_local_copy(&mut self, bytes: u64, factor: f64) {
        let d = self.world.cost().local_copy(self.node, bytes, factor);
        self.clock += d;
    }

    fn account(&self, dst: usize, bytes: u64, costed: bool) {
        let t = &self.world.traffic;
        if !costed {
            t.ctl_msgs.fetch_add(1, Ordering::Relaxed);
            return;
        }
        t.account_data(self.node, self.world.placement.node_of(dst), bytes);
    }

    /// Wakes `dst` if it runs as a parked task whose receive now has a
    /// match; a no-op under the threaded executor (deliver notified the
    /// condvar already).
    fn notify(&self, dst: usize) {
        if let Some(task) = &self.task {
            task.notify_delivery(dst, &self.world);
        }
    }

    /// Sends a data-plane message: the sender pays injection overhead and
    /// the receiver will pay the transfer.
    pub fn send(&mut self, dst: usize, tag: u32, payload: Vec<u8>) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        self.clock += VDuration::from_secs(self.world.cost.per_message_overhead);
        self.account(dst, payload.len() as u64, true);
        let causal = match self.world.causal.get() {
            Some(sink) => sink.on_send(self.rank, dst, self.clock, payload.len() as u64, true),
            None => 0,
        };
        self.world.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            payload: payload.into(),
            depart: self.clock,
            costed: true,
            causal,
        });
        self.notify(dst);
    }

    /// Sends a control-plane message: causality only, no transfer cost
    /// (the bulk-data phases it coordinates are priced analytically).
    pub fn send_ctl(&mut self, dst: usize, tag: u32, payload: Vec<u8>) {
        self.send_ctl_payload(dst, tag, payload.into());
    }

    /// Control-plane send of an owned *or shared* payload; collectives
    /// use the shared form so a broadcast queues one buffer, not one
    /// clone per destination.
    pub(crate) fn send_ctl_payload(&mut self, dst: usize, tag: u32, payload: Payload) {
        assert!(dst < self.size(), "send to rank {dst} of {}", self.size());
        self.account(dst, payload.len() as u64, false);
        // An injected control-network delay shifts the departure stamp:
        // the receiver's causality rule (max with depart) then charges it
        // in virtual time without any wall-clock sleeping.
        let depart = self.clock + self.world.ctl_delay();
        let causal = match self.world.causal.get() {
            Some(sink) => sink.on_send(self.rank, dst, self.clock, payload.len() as u64, false),
            None => 0,
        };
        self.world.mailboxes[dst].deliver(Envelope {
            src: self.rank,
            tag,
            payload,
            depart,
            costed: false,
            causal,
        });
        self.notify(dst);
    }

    fn settle(&mut self, env: &Envelope) {
        let before = self.clock;
        if env.costed {
            let src_node = self.world.placement.node_of(env.src);
            let d = self.world.cost.pt2pt(
                env.payload.len() as u64,
                src_node == self.node,
                src_node,
                self.node,
            );
            self.clock = self.clock.max(env.depart + d);
        } else {
            self.clock = self.clock.max(env.depart);
        }
        if env.causal != 0 {
            if let Some(sink) = self.world.causal.get() {
                sink.on_delivery(env.src, env.causal, self.rank, before, self.clock);
            }
        }
    }

    /// Blocking receive, routed per executor: condvar park on a thread,
    /// scheduler yield as a task. The yield loop re-probes after every
    /// wakeup — the scheduler only guarantees a match existed at notify
    /// time.
    fn recv_matched(&self, pattern: Pattern) -> Envelope {
        let mb = &self.world.mailboxes[self.rank];
        match &self.task {
            None => mb.recv(pattern),
            Some(task) => loop {
                if let Some(env) = mb.try_recv(pattern) {
                    return env;
                }
                task.block_on_message(pattern, self.clock);
            },
        }
    }

    /// Blocks for a message from `src` with `tag`; returns the payload.
    pub fn recv(&mut self, src: usize, tag: u32) -> Vec<u8> {
        let env = self.recv_matched(Pattern {
            src: Some(src),
            tag,
        });
        self.settle(&env);
        env.payload.into_vec()
    }

    /// Like [`Ctx::recv`] but keeps the payload shared: at a broadcast
    /// every receiver gets a clone of the *same* `Arc`, so the buffer is
    /// never copied and its identity can key per-world decode caches.
    /// Clock and traffic behave exactly like [`Ctx::recv`].
    pub fn recv_shared(&mut self, src: usize, tag: u32) -> Arc<[u8]> {
        let env = self.recv_matched(Pattern {
            src: Some(src),
            tag,
        });
        self.settle(&env);
        env.payload.into_shared()
    }

    /// Blocks for a message with `tag` from any source; returns
    /// `(src, payload)`.
    pub fn recv_any(&mut self, tag: u32) -> (usize, Vec<u8>) {
        let env = self.recv_matched(Pattern { src: None, tag });
        self.settle(&env);
        (env.src, env.payload.into_vec())
    }

    /// Deadline-bounded receive from `src`: the failure-detection
    /// primitive. If a matching message arrives it is settled and
    /// returned exactly like [`Ctx::recv`]; otherwise the clock advances
    /// to `deadline` — the virtual-time price of waiting out the timeout
    /// — and [`SimError::RankFailed`] names the silent peer.
    ///
    /// The miss arm is executor-specific but the result is not. The
    /// threaded engine parks for a short *wall-clock* budget; the event
    /// engine waits for quiescence (no runnable task), which proves the
    /// message can never arrive. Callers must only probe peers whose
    /// silence is already decided by shared data (the fault plan's crash
    /// schedule at an agreed virtual time). The engine's crash tracker
    /// honors this: it probes on a tag nothing ever sends on, and only
    /// ranks every peer has independently declared dead.
    ///
    /// # Errors
    /// [`SimError::RankFailed`] when no matching message arrived.
    pub fn recv_deadline(&mut self, src: usize, tag: u32, deadline: VTime) -> SimResult<Vec<u8>> {
        let pattern = Pattern {
            src: Some(src),
            tag,
        };
        let got = match &self.task {
            None => {
                const DETECT_WALL_BUDGET: std::time::Duration = std::time::Duration::from_millis(2);
                self.world.mailboxes[self.rank].recv_budgeted(pattern, DETECT_WALL_BUDGET)
            }
            Some(task) => {
                let mb = &self.world.mailboxes[self.rank];
                match mb.try_recv(pattern) {
                    Some(env) => Some(env),
                    None if task.block_with_deadline(pattern, deadline, self.clock) => None,
                    None => Some(mb.try_recv(pattern).expect("woken with a queued match")),
                }
            }
        };
        match got {
            Some(env) => {
                self.settle(&env);
                Ok(env.payload.into_vec())
            }
            None => {
                self.advance_to(deadline);
                Err(SimError::RankFailed { rank: src })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccio_sim::topology::{test_cluster, FillOrder};
    use mccio_sim::units::MIB;

    fn world_with(nodes: usize, cores: usize, ranks: usize, kind: ExecutorKind) -> Arc<World> {
        let cluster = test_cluster(nodes, cores);
        let placement = Placement::new(&cluster, ranks, FillOrder::Block).unwrap();
        World::with_executor(CostModel::new(cluster), placement, kind)
    }

    fn world(nodes: usize, cores: usize, ranks: usize) -> Arc<World> {
        world_with(nodes, cores, ranks, ExecutorKind::Threads)
    }

    const BOTH: [ExecutorKind; 2] = [ExecutorKind::Threads, ExecutorKind::Event];

    #[test]
    fn ping_pong_moves_data_and_time() {
        for kind in BOTH {
            let w = world_with(2, 1, 2, kind);
            let results = w.run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 1, vec![42; 1024]);
                    let back = ctx.recv(1, 2);
                    (back.len(), ctx.clock().as_secs())
                } else {
                    let msg = ctx.recv(0, 1);
                    ctx.send(0, 2, msg);
                    (0, ctx.clock().as_secs())
                }
            });
            assert_eq!(results[0].0, 1024);
            // Two inter-node hops: time strictly positive on both ranks.
            assert!(results[0].1 > 0.0);
            assert!(results[1].1 > 0.0);
            let t = w.traffic().snapshot();
            assert_eq!(t.data_msgs, 2);
            assert_eq!(t.inter_bytes, 2048);
            assert_eq!(t.node_egress[0], 1024);
            assert_eq!(t.node_ingress[0], 1024);
        }
    }

    #[test]
    fn executors_agree_bit_for_bit() {
        let run = |kind| {
            let w = world_with(2, 2, 4, kind);
            let clocks = w.run(|ctx| {
                let me = ctx.rank();
                ctx.advance(VDuration::from_secs(me as f64 * 0.125));
                let next = (me + 1) % ctx.size();
                let prev = (me + ctx.size() - 1) % ctx.size();
                ctx.send(next, 5, vec![me as u8; 256 * (me + 1)]);
                let got = ctx.recv(prev, 5);
                assert_eq!(got.len(), 256 * (prev + 1));
                ctx.barrier();
                ctx.clock().as_secs().to_bits()
            });
            (clocks, w.traffic().snapshot())
        };
        let (threaded, t_snap) = run(ExecutorKind::Threads);
        let (event, e_snap) = run(ExecutorKind::Event);
        assert_eq!(threaded, event, "virtual clocks must match bit-for-bit");
        assert_eq!(t_snap, e_snap, "traffic must match exactly");
    }

    #[test]
    fn control_messages_carry_causality_without_cost() {
        for kind in BOTH {
            let w = world_with(2, 1, 2, kind);
            let results = w.run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.advance(VDuration::from_secs(5.0));
                    ctx.send_ctl(1, 9, vec![]);
                    ctx.clock().as_secs()
                } else {
                    let _ = ctx.recv(0, 9);
                    ctx.clock().as_secs()
                }
            });
            // Receiver is pulled forward to the sender's clock, exactly.
            assert_eq!(results[1], 5.0);
            assert_eq!(w.traffic().snapshot().ctl_msgs, 1);
            assert_eq!(w.traffic().snapshot().inter_bytes, 0);
        }
    }

    #[test]
    fn injected_ctl_delay_shifts_causality() {
        let w = world(2, 1, 2);
        w.set_ctl_delay(VDuration::from_secs(0.25));
        let results = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.advance(VDuration::from_secs(1.0));
                ctx.send_ctl(1, 9, vec![]);
            } else {
                let _ = ctx.recv(0, 9);
            }
            ctx.clock().as_secs()
        });
        assert_eq!(results[1], 1.25, "receiver pays the injected delay");
        assert_eq!(results[0], 1.0, "sender does not");
    }

    #[test]
    fn costed_transfer_advances_receiver_by_bandwidth() {
        let w = world(2, 1, 2);
        let results = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 3, vec![0u8; MIB as usize]);
            } else {
                let _ = ctx.recv(0, 3);
            }
            ctx.clock().as_secs()
        });
        // 1 MiB over 1 GiB/s link ≈ ~1 ms at the receiver.
        assert!(results[1] > 0.9e-3 && results[1] < 1.5e-3, "{}", results[1]);
        // Sender only paid injection overhead.
        assert!(results[0] < 1e-4);
    }

    #[test]
    fn results_are_in_rank_order() {
        for kind in BOTH {
            let w = world_with(2, 4, 8, kind);
            let results = w.run(|ctx| ctx.rank() * 10);
            assert_eq!(results, (0..8).map(|r| r * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn local_copy_charges_dram_time() {
        let w = world(1, 1, 1);
        let r = w.run(|ctx| {
            ctx.charge_local_copy(10 * MIB, 1.0);
            let healthy = ctx.clock().as_secs();
            ctx.charge_local_copy(10 * MIB, 4.0);
            (healthy, ctx.clock().as_secs() - healthy)
        });
        let (healthy, thrashed) = r[0];
        assert!((thrashed / healthy - 4.0).abs() < 1e-9);
    }

    #[test]
    fn recv_any_reports_source() {
        for kind in BOTH {
            let w = world_with(1, 4, 4, kind);
            let r = w.run(|ctx| {
                if ctx.rank() == 0 {
                    let mut seen = Vec::new();
                    for _ in 0..3 {
                        let (src, _) = ctx.recv_any(7);
                        seen.push(src);
                    }
                    seen.sort_unstable();
                    seen
                } else {
                    ctx.send(0, 7, vec![ctx.rank() as u8]);
                    vec![]
                }
            });
            assert_eq!(r[0], vec![1, 2, 3]);
        }
    }

    #[test]
    fn recv_deadline_charges_the_timeout_on_silence() {
        for kind in BOTH {
            let w = world_with(1, 2, 2, kind);
            let r = w.run(|ctx| {
                if ctx.rank() == 0 {
                    // Rank 1 never sends on tag 77: the deadline must expire
                    // and the clock must land exactly on it.
                    let deadline = ctx.clock() + VDuration::from_secs(0.5);
                    let err = ctx.recv_deadline(1, 77, deadline).unwrap_err();
                    assert_eq!(err, mccio_sim::SimError::RankFailed { rank: 1 });
                    ctx.clock().as_secs()
                } else {
                    0.0
                }
            });
            assert_eq!(r[0], 0.5);
        }
    }

    #[test]
    fn recv_deadline_delivers_a_present_message() {
        for kind in BOTH {
            let w = world_with(1, 2, 2, kind);
            let r = w.run(|ctx| {
                if ctx.rank() == 0 {
                    ctx.send_ctl(1, 78, vec![9]);
                    ctx.barrier();
                    0
                } else {
                    // The barrier orders the send before the probe, so the
                    // match is already queued: no wall-clock race.
                    ctx.barrier();
                    let deadline = ctx.clock() + VDuration::from_secs(10.0);
                    let payload = ctx.recv_deadline(0, 78, deadline).unwrap();
                    assert!(
                        ctx.clock().as_secs() < 10.0,
                        "delivery must not charge the deadline"
                    );
                    payload[0]
                }
            });
            assert_eq!(r[1], 9);
        }
    }

    #[test]
    fn event_deadline_waits_for_late_traffic_before_expiring() {
        // The deadline waiter must only be declared missed at
        // quiescence: rank 1 does unrelated work first, then sends the
        // probed message, and the waiter must still get it.
        let w = world_with(1, 3, 3, ExecutorKind::Event);
        let r = w.run(|ctx| match ctx.rank() {
            0 => {
                let deadline = ctx.clock() + VDuration::from_secs(4.0);
                ctx.recv_deadline(1, 80, deadline).map(|p| p[0])
            }
            1 => {
                // A detour through rank 2 keeps the world busy while
                // rank 0 is already parked on its deadline.
                ctx.send_ctl(2, 81, vec![]);
                let _ = ctx.recv(2, 82);
                ctx.send_ctl(0, 80, vec![7]);
                Ok(0)
            }
            _ => {
                let _ = ctx.recv(1, 81);
                ctx.send_ctl(1, 82, vec![]);
                Ok(0)
            }
        });
        assert_eq!(r[0], Ok(7), "late but reachable traffic beats the deadline");
    }

    #[test]
    fn event_scheduler_breaks_clock_ties_by_rank_order() {
        // Satellite: same virtual clock => wake order is (rank, seq).
        // Ranks 1..4 park at clock zero; the root's release fan-out
        // makes them all runnable at once. Their post-recv side effects
        // must interleave in rank order, reproducibly.
        let w = world_with(1, 4, 4, ExecutorKind::Event);
        let log = std::sync::Mutex::new(Vec::new());
        let _ = w.run(|ctx| {
            let me = ctx.rank();
            if me == 0 {
                for src in 1..4 {
                    let _ = ctx.recv(src, 1);
                }
                for dst in 1..4 {
                    ctx.send_ctl(dst, 2, vec![]);
                }
            } else {
                ctx.send_ctl(0, 1, vec![]);
                let _ = ctx.recv(0, 2);
                log.lock().unwrap().push(me);
            }
        });
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn event_scheduler_runs_smallest_clock_first() {
        // Ranks park with distinct clocks (rank r waits at n - r
        // seconds); when the root releases everyone at once, the
        // scheduler must resume them smallest clock first.
        let n = 4;
        let w = world_with(1, n, n, ExecutorKind::Event);
        let log = std::sync::Mutex::new(Vec::new());
        let _ = w.run(|ctx| {
            let me = ctx.rank();
            if me == 0 {
                for src in 1..n {
                    let _ = ctx.recv(src, 1);
                }
                for dst in 1..n {
                    ctx.send_ctl(dst, 2, vec![]);
                }
            } else {
                ctx.advance(VDuration::from_secs((n - me) as f64));
                ctx.send_ctl(0, 1, vec![]);
                let _ = ctx.recv(0, 2);
                log.lock().unwrap().push(me);
            }
        });
        assert_eq!(
            *log.lock().unwrap(),
            vec![3, 2, 1],
            "rank 3 parked at the smallest clock and must wake first"
        );
    }

    #[test]
    fn event_panic_propagates_with_its_message() {
        let w = world_with(1, 2, 2, ExecutorKind::Event);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = w.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("rank 1 exploded");
                }
            });
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("rank 1 exploded"), "got panic: {msg}");
    }

    #[test]
    #[should_panic(expected = "unmatched messages")]
    fn leaked_message_is_detected() {
        let w = world(1, 2, 2);
        let _ = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_ctl(1, 99, vec![1]);
            }
            // rank 1 never receives.
        });
    }

    #[test]
    #[should_panic(expected = "unmatched messages")]
    fn event_leaked_message_is_detected() {
        let w = world_with(1, 2, 2, ExecutorKind::Event);
        let _ = w.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send_ctl(1, 99, vec![1]);
            }
            // rank 1 never receives.
        });
    }

    #[test]
    fn event_executor_deadlock_is_diagnosed() {
        let w = world_with(1, 2, 2, ExecutorKind::Event);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = w.run(|ctx| {
                // Everyone waits for a message nobody sends.
                let _ = ctx.recv((ctx.rank() + 1) % 2, 123);
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "got panic: {msg}");
        assert!(msg.contains("rank 0"), "names the stuck ranks: {msg}");
    }

    #[test]
    fn event_executor_handles_thousands_of_ranks() {
        // A 2000-rank world on OS threads would need gigabytes of
        // committed stacks; as tasks it is a quick smoke.
        let n = 2000;
        let w = world_with(20, 100, n, ExecutorKind::Event);
        let clocks = w.run(|ctx| {
            ctx.advance(VDuration::from_secs(ctx.rank() as f64 * 1e-6));
            ctx.barrier();
            ctx.clock().as_secs()
        });
        let expect = (n - 1) as f64 * 1e-6;
        for c in clocks {
            assert_eq!(c, expect, "barrier syncs every clock to the max");
        }
    }
}
