//! World-level size-classed byte-buffer recycler.
//!
//! The per-op engine pool (`core::engine::pool`) retires buffers when
//! its operation closes; before this module existed those buffers went
//! back to the allocator, and the next operation re-faulted a fresh
//! generation of pages (at 10k+ ranks that is gigabytes of `mmap` /
//! `munmap` churn per collective). The recycler lives on the `World`,
//! so payload and assembly buffers survive operation boundaries: a
//! steady-state operation allocates nothing on its hot path, it just
//! circulates committed slabs.
//!
//! ## Exact-capacity classes
//!
//! Buffers are binned by their *exact* capacity, and [`BytePool::take`]
//! recycles only a bin whose capacity equals the request — a miss
//! allocates `Vec::with_capacity(cap)`, which is also exactly `cap`
//! bytes. The strictness is deliberate: a recycled buffer must be
//! indistinguishable (capacity included) from a fresh allocation,
//! because the per-rank engine pool makes hit/miss decisions from
//! buffer capacities and its counters are pinned exactly by the perf
//! regression gate. Which buffers sit in this shared pool depends on
//! how ranks interleave; their *capacities* must not. Collective
//! schedules repeat the same payload and assembly sizes across rounds
//! and operations, so exact matching still recycles the bulk of the
//! data plane.
//!
//! The pool is shared by every rank of a world, so its hit/miss and
//! high-water counters depend on thread scheduling. They are
//! observability data (surfaced through `obs` and the trace report) and
//! are deliberately kept out of every bit-identity artifact: virtual
//! times, file bytes, traffic snapshots, and the per-rank engine pool
//! counters are all computed without consulting this pool's state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mccio_sim::hostprof::{self, HostPhase};

/// Total bytes of retired capacity the pool will pin before letting
/// further retirees drop. Generous on purpose: the point is to keep a
/// whole operation's working set committed between operations.
const DEFAULT_RETAIN_BYTES: u64 = 1 << 30;

/// Per-rank retirement headroom used by [`BytePool::for_ranks`]: a
/// collective op's payload + assembly working set lands around tens of
/// KiB per rank, and a ceiling below the working set makes the *next*
/// operation re-allocate everything the ceiling refused to park.
const RETAIN_BYTES_PER_RANK: u64 = 32 * 1024;

/// Smallest capacity worth pooling; tinier buffers cost more to bin
/// than to reallocate.
const MIN_POOLED_CAPACITY: usize = 64;

#[derive(Debug)]
struct Bins {
    /// Retired buffers keyed by exact capacity.
    by_capacity: HashMap<usize, Vec<Vec<u8>>>,
    /// Sum of retained capacities across all bins.
    retained_bytes: u64,
    /// Retention ceiling (see [`DEFAULT_RETAIN_BYTES`]).
    cap_bytes: u64,
}

/// Cumulative counters; see [`BytePool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecycleStats {
    /// Takes served from a retired buffer.
    pub hits: u64,
    /// Takes that had to allocate.
    pub misses: u64,
    /// Bytes of buffer capacity currently handed out (taken, not yet
    /// returned).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` — the peak payload/assembly
    /// working set the engine ever held at once.
    pub peak_live_bytes: u64,
    /// Bytes of retired capacity currently parked in the free lists.
    pub retained_bytes: u64,
}

/// An exact-capacity-classed free list of byte buffers shared by every
/// rank of a world (see module docs).
#[derive(Debug)]
pub struct BytePool {
    bins: Mutex<Bins>,
    hits: AtomicU64,
    misses: AtomicU64,
    live_bytes: AtomicU64,
    peak_live_bytes: AtomicU64,
}

impl Default for BytePool {
    fn default() -> Self {
        BytePool::with_retain_limit(DEFAULT_RETAIN_BYTES)
    }
}

impl BytePool {
    /// A pool sized for a world of `n_ranks`: the retention ceiling
    /// scales with the rank count so one operation's full working set
    /// survives to seed the next, with `DEFAULT_RETAIN_BYTES` as the
    /// floor.
    #[must_use]
    pub fn for_ranks(n_ranks: usize) -> Self {
        BytePool::with_retain_limit(
            DEFAULT_RETAIN_BYTES.max(n_ranks as u64 * RETAIN_BYTES_PER_RANK),
        )
    }

    /// A pool that parks at most `cap_bytes` of retired capacity.
    #[must_use]
    pub fn with_retain_limit(cap_bytes: u64) -> Self {
        BytePool {
            bins: Mutex::new(Bins {
                by_capacity: HashMap::new(),
                retained_bytes: 0,
                cap_bytes,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
            peak_live_bytes: AtomicU64::new(0),
        }
    }

    /// An empty buffer of capacity exactly `cap`: recycled from the
    /// matching bin when one is parked there, freshly allocated
    /// otherwise. Contents never leak between uses.
    pub fn take(&self, cap: usize) -> Vec<u8> {
        let _t = hostprof::timer(HostPhase::RecycleTake);
        let recycled = if cap >= MIN_POOLED_CAPACITY {
            let mut bins = self.bins.lock().expect("byte pool poisoned");
            let found = bins.by_capacity.get_mut(&cap).and_then(Vec::pop);
            if found.is_some() {
                bins.retained_bytes -= cap as u64;
            }
            found
        } else {
            None
        };
        let buf = match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                debug_assert_eq!(buf.capacity(), cap);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap)
            }
        };
        let live = self
            .live_bytes
            .fetch_add(buf.capacity() as u64, Ordering::Relaxed)
            + buf.capacity() as u64;
        self.peak_live_bytes.fetch_max(live, Ordering::Relaxed);
        buf
    }

    /// Retires a buffer for reuse (dropped when it is tiny or the
    /// retention ceiling is reached).
    pub fn put(&self, buf: Vec<u8>) {
        let _t = hostprof::timer(HostPhase::RecycleReturn);
        let cap = buf.capacity();
        // Saturating: callers may retire buffers the pool never handed
        // out (engine-grown payloads), so live accounting is a floor.
        let _ = self
            .live_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(cap as u64))
            });
        if cap < MIN_POOLED_CAPACITY {
            return;
        }
        let mut bins = self.bins.lock().expect("byte pool poisoned");
        if bins.retained_bytes + cap as u64 > bins.cap_bytes {
            return;
        }
        bins.retained_bytes += cap as u64;
        bins.by_capacity.entry(cap).or_default().push(buf);
    }

    /// Cumulative counters. `live_bytes`/`peak_live_bytes` are
    /// approximate under the threaded executor (relaxed atomics), exact
    /// under the single-threaded event executor.
    #[must_use]
    pub fn stats(&self) -> RecycleStats {
        let bins = self.bins.lock().expect("byte pool poisoned");
        RecycleStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            peak_live_bytes: self.peak_live_bytes.load(Ordering::Relaxed),
            retained_bytes: bins.retained_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_exact_capacity() {
        let pool = BytePool::default();
        let mut a = pool.take(1000);
        a.extend_from_slice(&[7u8; 100]);
        let ptr = a.as_ptr();
        pool.put(a);
        let b = pool.take(1000);
        assert_eq!(b.as_ptr(), ptr, "buffer not recycled");
        assert!(b.is_empty(), "recycled buffer not cleared");
        assert_eq!(b.capacity(), 1000);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn near_miss_capacities_do_not_serve() {
        let pool = BytePool::default();
        pool.put(Vec::with_capacity(4096));
        let b = pool.take(4095);
        assert_eq!(b.capacity(), 4095, "take must look like a fresh alloc");
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn retention_ceiling_bounds_parked_bytes() {
        let pool = BytePool::with_retain_limit(1024);
        pool.put(Vec::with_capacity(512));
        pool.put(Vec::with_capacity(512));
        pool.put(Vec::with_capacity(512)); // over the ceiling -> dropped
        assert_eq!(pool.stats().retained_bytes, 1024);
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        let pool = BytePool::default();
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.stats().retained_bytes, 0);
        let b = pool.take(8);
        assert_eq!(b.capacity(), 8);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn live_bytes_track_outstanding_capacity() {
        let pool = BytePool::default();
        let a = pool.take(1 << 20);
        let cap = a.capacity() as u64;
        assert_eq!(pool.stats().live_bytes, cap);
        assert_eq!(pool.stats().peak_live_bytes, cap);
        pool.put(a);
        assert_eq!(pool.stats().live_bytes, 0);
        assert_eq!(pool.stats().peak_live_bytes, cap, "peak is a high-water");
    }
}
