//! Per-rank message matching.
//!
//! Each rank owns a [`Mailbox`]: an indexed store of delivered envelopes
//! plus a condition variable (used only by the threaded executor; the
//! event executor parks tasks instead). `recv` blocks until an envelope
//! matching `(src, tag)` is present, then removes and returns the
//! *earliest delivered* match, giving MPI's non-overtaking guarantee for
//! messages with the same source and tag.
//!
//! Matching is O(log n) in queued messages rather than a linear scan:
//! flat collectives funnel `n - 1` messages through the root's mailbox,
//! so at 10k+ ranks a scan per receive turns every barrier into an
//! O(n²) hot spot. Exact `(src, tag)` receives hit a per-pair FIFO
//! directly; `ANY_SOURCE` receives consult a per-tag index ordered by
//! delivery sequence. Empty per-pair queues are dropped eagerly, so a
//! mailbox that drained returns its memory instead of holding
//! high-water-mark capacity for the rest of the run.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use mccio_sim::sync::{Condvar, Mutex};

use mccio_sim::VTime;

/// Message payload bytes. Point-to-point sends own their buffer;
/// broadcast-style fan-outs share one allocation between all receivers
/// so a megabyte plan broadcast to 100k ranks queues one buffer, not
/// 100k copies.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Exclusively owned bytes (moved, never copied after send).
    Owned(Vec<u8>),
    /// One buffer shared by many in-flight envelopes.
    Shared(Arc<[u8]>),
}

impl Payload {
    /// Number of payload bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Payload::Owned(v) => v.len(),
            Payload::Shared(s) => s.len(),
        }
    }

    /// True when the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(s) => s,
        }
    }

    /// Extracts owned bytes: free for owned payloads, one copy for
    /// shared ones (the receive-side half of the broadcast bargain).
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(s) => s.to_vec(),
        }
    }

    /// Extracts the bytes as a shared buffer: free for shared payloads
    /// (the receiver aliases the sender's allocation — at a broadcast
    /// every receiver holds the *same* `Arc`, which downstream caches
    /// exploit as an identity key), one move for owned ones.
    #[must_use]
    pub fn into_shared(self) -> Arc<[u8]> {
        match self {
            Payload::Owned(v) => v.into(),
            Payload::Shared(s) => s,
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Owned(v)
    }
}

/// A message in flight or queued at the receiver.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Match tag.
    pub tag: u32,
    /// Payload bytes.
    pub payload: Payload,
    /// Virtual time at which the message left the sender.
    pub depart: VTime,
    /// True when the message should be charged transfer cost at the
    /// receiver; control/bookkeeping messages are delivered free (their
    /// cost is priced analytically by the phase model instead).
    pub costed: bool,
    /// Per-sender causal sequence number stamped by the world's
    /// installed [`mccio_sim::causal::CausalSink`], or 0 when causal
    /// tracing is off. `(src, causal)` identifies the happens-before
    /// edge this delivery closes.
    pub causal: u64,
}

/// Matching criteria for a receive.
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    /// Required source rank, or `None` for MPI_ANY_SOURCE semantics.
    pub src: Option<usize>,
    /// Required tag.
    pub tag: u32,
}

#[derive(Debug, Default)]
struct Queue {
    /// Per-(src, tag) FIFO of `(delivery seq, envelope)`.
    by_pair: HashMap<(usize, u32), VecDeque<(u64, Envelope)>>,
    /// Per-tag index of queued messages as `(delivery seq, src)`,
    /// ordered so ANY_SOURCE takes the earliest delivered match.
    by_tag: HashMap<u32, BTreeSet<(u64, usize)>>,
    /// Total queued envelopes.
    len: usize,
    /// Next delivery sequence number.
    next_seq: u64,
}

impl Queue {
    fn push(&mut self, env: Envelope) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_tag
            .entry(env.tag)
            .or_default()
            .insert((seq, env.src));
        self.by_pair
            .entry((env.src, env.tag))
            .or_default()
            .push_back((seq, env));
        self.len += 1;
    }

    /// The earliest-delivered queued match, if any, as `(src, tag)`.
    fn find(&self, pattern: Pattern) -> Option<(usize, u32)> {
        match pattern.src {
            Some(src) => self
                .by_pair
                .contains_key(&(src, pattern.tag))
                .then_some((src, pattern.tag)),
            None => self
                .by_tag
                .get(&pattern.tag)
                .and_then(|set| set.iter().next())
                .map(|&(_, src)| (src, pattern.tag)),
        }
    }

    /// Removes the FIFO head for `key`; `key` must come from `find`.
    fn pop(&mut self, key: (usize, u32)) -> Envelope {
        let std::collections::hash_map::Entry::Occupied(mut entry) = self.by_pair.entry(key) else {
            unreachable!("pop without find");
        };
        let (seq, env) = entry.get_mut().pop_front().expect("find returned the key");
        if entry.get().is_empty() {
            entry.remove();
        }
        let tag_set = self.by_tag.get_mut(&key.1).expect("index in sync");
        tag_set.remove(&(seq, key.0));
        if tag_set.is_empty() {
            self.by_tag.remove(&key.1);
        }
        self.len -= 1;
        env
    }

    fn take(&mut self, pattern: Pattern) -> Option<Envelope> {
        self.find(pattern).map(|key| self.pop(key))
    }
}

/// One rank's incoming-message store.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<Queue>,
    available: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Delivers an envelope (called from the sender's thread or task).
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push(env);
        // Wake all blocked receivers: with one owner thread per mailbox
        // there is at most one waiter, but collectives on helper threads
        // must not deadlock if that ever changes.
        self.available.notify_all();
    }

    /// Blocks until a message matching `pattern` arrives, then removes
    /// and returns it. Threaded executor only — event-mode tasks use
    /// `try_recv` plus a scheduler yield.
    pub fn recv(&self, pattern: Pattern) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(env) = q.take(pattern) {
                return env;
            }
            self.available.wait(&mut q);
        }
    }

    /// Bounded receive: blocks until a message matching `pattern`
    /// arrives or `budget` of *wall-clock* time elapses, returning
    /// `None` on expiry. The budget is an implementation detail of the
    /// threaded executor's failure detection — it only bounds how long
    /// the OS thread parks; the virtual-time price of a miss is charged
    /// by the caller ([`crate::Ctx::recv_deadline`]) and never depends
    /// on the budget. The event executor detects misses at quiescence
    /// instead and never calls this.
    pub fn recv_budgeted(&self, pattern: Pattern, budget: std::time::Duration) -> Option<Envelope> {
        let deadline = std::time::Instant::now() + budget;
        let mut q = self.queue.lock();
        loop {
            if let Some(env) = q.take(pattern) {
                return Some(env);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            // A timed-out wait loops once more: the predicate re-check
            // above decides, so a racing delivery is never missed.
            let _ = self.available.wait_timeout(&mut q, remaining);
        }
    }

    /// Non-blocking probe: removes and returns a match if one is queued.
    pub fn try_recv(&self, pattern: Pattern) -> Option<Envelope> {
        self.queue.lock().take(pattern)
    }

    /// True when a matching message is queued (does not remove it).
    /// The event scheduler's wakeup predicate.
    #[must_use]
    pub fn has_match(&self, pattern: Pattern) -> bool {
        self.queue.lock().find(pattern).is_some()
    }

    /// Number of queued (unmatched) messages; used by shutdown checks to
    /// assert no message was silently dropped.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.lock().len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: u32, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            payload: vec![byte].into(),
            depart: VTime::ZERO,
            costed: false,
            causal: 0,
        }
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10, b'a'));
        mb.deliver(env(2, 10, b'b'));
        mb.deliver(env(1, 20, b'c'));
        let got = mb.recv(Pattern {
            src: Some(2),
            tag: 10,
        });
        assert_eq!(got.payload.as_slice(), b"b");
        let got = mb.recv(Pattern {
            src: Some(1),
            tag: 20,
        });
        assert_eq!(got.payload.as_slice(), b"c");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn any_source_takes_earliest_delivered() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 7, b'x'));
        mb.deliver(env(1, 7, b'y'));
        let got = mb.recv(Pattern { src: None, tag: 7 });
        assert_eq!(got.src, 3, "earliest delivery wins under ANY_SOURCE");
    }

    #[test]
    fn same_src_tag_is_fifo() {
        let mb = Mailbox::new();
        for b in [b'1', b'2', b'3'] {
            mb.deliver(env(0, 5, b));
        }
        for expect in [b'1', b'2', b'3'] {
            let got = mb.recv(Pattern {
                src: Some(0),
                tag: 5,
            });
            assert_eq!(got.payload.into_vec(), vec![expect]);
        }
    }

    #[test]
    fn try_recv_does_not_block() {
        let mb = Mailbox::new();
        assert!(mb.try_recv(Pattern { src: None, tag: 1 }).is_none());
        mb.deliver(env(0, 1, b'z'));
        assert!(mb.try_recv(Pattern { src: None, tag: 1 }).is_some());
        assert!(mb.try_recv(Pattern { src: None, tag: 1 }).is_none());
    }

    #[test]
    fn has_match_probes_without_removing() {
        let mb = Mailbox::new();
        let pat = Pattern {
            src: Some(4),
            tag: 2,
        };
        assert!(!mb.has_match(pat));
        mb.deliver(env(4, 2, b'q'));
        assert!(mb.has_match(pat));
        assert!(!mb.has_match(Pattern {
            src: Some(5),
            tag: 2
        }));
        assert!(mb.has_match(Pattern { src: None, tag: 2 }));
        assert_eq!(mb.pending(), 1, "has_match must not consume");
    }

    #[test]
    fn shared_payloads_alias_one_buffer() {
        let mb = Mailbox::new();
        let shared: Arc<[u8]> = b"plan".as_slice().into();
        for src in 0..3 {
            mb.deliver(Envelope {
                src,
                tag: 6,
                payload: Payload::Shared(Arc::clone(&shared)),
                depart: VTime::ZERO,
                costed: false,
                causal: 0,
            });
        }
        assert_eq!(Arc::strong_count(&shared), 4, "queued envelopes alias");
        for src in 0..3 {
            let got = mb.recv(Pattern {
                src: Some(src),
                tag: 6,
            });
            assert_eq!(got.payload.into_vec(), b"plan");
        }
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn interleaved_tags_and_sources_stay_in_sync() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, b'a'));
        mb.deliver(env(1, 1, b'b'));
        mb.deliver(env(0, 1, b'c'));
        // ANY_SOURCE drains in delivery order across sources.
        let order: Vec<u8> = (0..3)
            .map(|_| mb.recv(Pattern { src: None, tag: 1 }).payload.into_vec()[0])
            .collect();
        assert_eq!(order, b"abc");
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn recv_budgeted_expires_and_delivers() {
        let mb = Mailbox::new();
        let got = mb.recv_budgeted(
            Pattern { src: None, tag: 4 },
            std::time::Duration::from_millis(5),
        );
        assert!(got.is_none(), "empty mailbox: budget expires");
        mb.deliver(env(2, 4, b'k'));
        let got = mb.recv_budgeted(
            Pattern { src: None, tag: 4 },
            std::time::Duration::from_secs(5),
        );
        assert_eq!(got.unwrap().payload.into_vec(), b"k");
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            let got = mb2.recv(Pattern {
                src: Some(9),
                tag: 42,
            });
            got.payload.into_vec()[0]
        });
        // Deliver a non-matching message first, then the match.
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.deliver(env(8, 42, b'n'));
        mb.deliver(env(9, 42, b'm'));
        assert_eq!(handle.join().unwrap(), b'm');
        assert_eq!(mb.pending(), 1);
    }
}
