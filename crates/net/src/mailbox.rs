//! Per-rank message matching.
//!
//! Each rank owns a [`Mailbox`]: an unordered store of delivered
//! envelopes plus a condition variable. `recv` blocks until an envelope
//! matching `(src, tag)` is present, then removes and returns the
//! *earliest delivered* match, giving MPI's non-overtaking guarantee for
//! messages with the same source and tag.

use mccio_sim::sync::{Condvar, Mutex};

use mccio_sim::VTime;

/// A message in flight or queued at the receiver.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Match tag.
    pub tag: u32,
    /// Payload bytes (moved, never copied after send).
    pub payload: Vec<u8>,
    /// Virtual time at which the message left the sender.
    pub depart: VTime,
    /// True when the message should be charged transfer cost at the
    /// receiver; control/bookkeeping messages are delivered free (their
    /// cost is priced analytically by the phase model instead).
    pub costed: bool,
}

/// Matching criteria for a receive.
#[derive(Debug, Clone, Copy)]
pub struct Pattern {
    /// Required source rank, or `None` for MPI_ANY_SOURCE semantics.
    pub src: Option<usize>,
    /// Required tag.
    pub tag: u32,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.src.is_none_or(|s| s == env.src)
    }
}

#[derive(Debug, Default)]
struct Queue {
    /// Delivered-but-unmatched messages in delivery order. A Vec is the
    /// right structure: queues stay short (collectives match eagerly) and
    /// removal order must follow delivery order per (src, tag).
    items: Vec<Envelope>,
}

/// One rank's incoming-message store.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<Queue>,
    available: Condvar,
}

impl Mailbox {
    /// Creates an empty mailbox.
    #[must_use]
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Delivers an envelope (called from the sender's thread).
    pub fn deliver(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.items.push(env);
        // Wake all blocked receivers: with one owner thread per mailbox
        // there is at most one waiter, but collectives on helper threads
        // must not deadlock if that ever changes.
        self.available.notify_all();
    }

    /// Blocks until a message matching `pattern` arrives, then removes
    /// and returns it.
    pub fn recv(&self, pattern: Pattern) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.items.iter().position(|e| pattern.matches(e)) {
                return q.items.remove(idx);
            }
            self.available.wait(&mut q);
        }
    }

    /// Bounded receive: blocks until a message matching `pattern`
    /// arrives or `budget` of *wall-clock* time elapses, returning
    /// `None` on expiry. The budget is an implementation detail of
    /// failure detection — it only bounds how long the OS thread parks;
    /// the virtual-time price of a miss is charged by the caller
    /// ([`crate::Ctx::recv_deadline`]) and never depends on the budget.
    pub fn recv_budgeted(&self, pattern: Pattern, budget: std::time::Duration) -> Option<Envelope> {
        let deadline = std::time::Instant::now() + budget;
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.items.iter().position(|e| pattern.matches(e)) {
                return Some(q.items.remove(idx));
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            // A timed-out wait loops once more: the predicate re-check
            // above decides, so a racing delivery is never missed.
            let _ = self.available.wait_timeout(&mut q, remaining);
        }
    }

    /// Non-blocking probe: removes and returns a match if one is queued.
    pub fn try_recv(&self, pattern: Pattern) -> Option<Envelope> {
        let mut q = self.queue.lock();
        q.items
            .iter()
            .position(|e| pattern.matches(e))
            .map(|idx| q.items.remove(idx))
    }

    /// Number of queued (unmatched) messages; used by shutdown checks to
    /// assert no message was silently dropped.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(src: usize, tag: u32, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            payload: vec![byte],
            depart: VTime::ZERO,
            costed: false,
        }
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10, b'a'));
        mb.deliver(env(2, 10, b'b'));
        mb.deliver(env(1, 20, b'c'));
        let got = mb.recv(Pattern {
            src: Some(2),
            tag: 10,
        });
        assert_eq!(got.payload, b"b");
        let got = mb.recv(Pattern {
            src: Some(1),
            tag: 20,
        });
        assert_eq!(got.payload, b"c");
        assert_eq!(mb.pending(), 1);
    }

    #[test]
    fn any_source_takes_earliest_delivered() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 7, b'x'));
        mb.deliver(env(1, 7, b'y'));
        let got = mb.recv(Pattern { src: None, tag: 7 });
        assert_eq!(got.src, 3, "earliest delivery wins under ANY_SOURCE");
    }

    #[test]
    fn same_src_tag_is_fifo() {
        let mb = Mailbox::new();
        for b in [b'1', b'2', b'3'] {
            mb.deliver(env(0, 5, b));
        }
        for expect in [b'1', b'2', b'3'] {
            let got = mb.recv(Pattern {
                src: Some(0),
                tag: 5,
            });
            assert_eq!(got.payload, vec![expect]);
        }
    }

    #[test]
    fn try_recv_does_not_block() {
        let mb = Mailbox::new();
        assert!(mb.try_recv(Pattern { src: None, tag: 1 }).is_none());
        mb.deliver(env(0, 1, b'z'));
        assert!(mb.try_recv(Pattern { src: None, tag: 1 }).is_some());
        assert!(mb.try_recv(Pattern { src: None, tag: 1 }).is_none());
    }

    #[test]
    fn recv_budgeted_expires_and_delivers() {
        let mb = Mailbox::new();
        let got = mb.recv_budgeted(
            Pattern { src: None, tag: 4 },
            std::time::Duration::from_millis(5),
        );
        assert!(got.is_none(), "empty mailbox: budget expires");
        mb.deliver(env(2, 4, b'k'));
        let got = mb.recv_budgeted(
            Pattern { src: None, tag: 4 },
            std::time::Duration::from_secs(5),
        );
        assert_eq!(got.unwrap().payload, b"k");
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            let got = mb2.recv(Pattern {
                src: Some(9),
                tag: 42,
            });
            got.payload[0]
        });
        // Deliver a non-matching message first, then the match.
        std::thread::sleep(std::time::Duration::from_millis(10));
        mb.deliver(env(8, 42, b'n'));
        mb.deliver(env(9, 42, b'm'));
        assert_eq!(handle.join().unwrap(), b'm');
        assert_eq!(mb.pending(), 1);
    }
}
