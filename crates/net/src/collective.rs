//! Group collectives over the point-to-point layer.
//!
//! All collectives here are *control-plane*: they move driver metadata
//! (offset lists, clocks, exchange matrices) and enforce causality, but
//! charge no transfer time — the bulk-data phases they coordinate are
//! priced analytically through [`mccio_sim::CostModel::shuffle_phase`].
//! The one data-plane collective, [`Ctx::exchange`], moves real payload
//! bytes but is likewise uncosted, because every caller immediately
//! follows it with an analytic phase charge; it still updates the traffic
//! counters so experiments can report shuffle volumes.
//!
//! Every operation is defined over a [`RankSet`] and must be called by
//! *all* members of the set, SPMD-style, in the same order — exactly
//! MPI's rule. The designated root is the smallest member.

use std::sync::Arc;

use mccio_sim::time::VTime;

use crate::engine::Ctx;
use crate::group::RankSet;
use crate::mailbox::Payload;
use crate::wire::{decode_f64, encode_f64, put_u64, Reader};

/// Internal tag space; user tags must stay below this.
pub const INTERNAL_TAG_BASE: u32 = 0xFF00_0000;
const TAG_GATHER: u32 = INTERNAL_TAG_BASE + 1;
const TAG_BCAST: u32 = INTERNAL_TAG_BASE + 2;
const TAG_BARRIER_IN: u32 = INTERNAL_TAG_BASE + 3;
const TAG_BARRIER_OUT: u32 = INTERNAL_TAG_BASE + 4;
const TAG_EXCHANGE: u32 = INTERNAL_TAG_BASE + 5;

impl Ctx {
    fn assert_member(&self, group: &RankSet, op: &str) {
        assert!(
            group.contains(self.rank()),
            "rank {} called {op} on a group it is not a member of: {:?}",
            self.rank(),
            group.members()
        );
    }

    /// Barrier over `group`. On return every member's clock equals the
    /// maximum entry clock across the group.
    pub fn group_barrier(&mut self, group: &RankSet) {
        self.assert_member(group, "group_barrier");
        let root = group.root();
        if self.rank() == root {
            for src in group.iter().filter(|&r| r != root) {
                let _ = self.recv(src, TAG_BARRIER_IN);
            }
            for dst in group.iter().filter(|&r| r != root) {
                self.send_ctl(dst, TAG_BARRIER_OUT, Vec::new());
            }
        } else {
            self.send_ctl(root, TAG_BARRIER_IN, Vec::new());
            let _ = self.recv(root, TAG_BARRIER_OUT);
        }
    }

    /// World barrier (all ranks).
    pub fn barrier(&mut self) {
        let world = self.world_ranks();
        self.group_barrier(&world);
    }

    /// Gathers each member's payload at the root. Returns
    /// `Some(payloads in group order)` at the root, `None` elsewhere.
    pub fn group_gather(&mut self, group: &RankSet, payload: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        self.assert_member(group, "group_gather");
        let root = group.root();
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(group.len());
            for member in group.iter() {
                if member == root {
                    out.push(payload.clone());
                } else {
                    out.push(self.recv(member, TAG_GATHER));
                }
            }
            Some(out)
        } else {
            self.send_ctl(root, TAG_GATHER, payload);
            None
        }
    }

    /// Broadcasts the root's payload to every member; all members return
    /// the payload. Non-roots pass anything (conventionally empty).
    ///
    /// All in-flight copies share one buffer: a plan broadcast to 100k
    /// ranks queues O(plan) bytes, not O(ranks × plan). Receivers copy
    /// out on delivery.
    pub fn group_bcast(&mut self, group: &RankSet, payload: Vec<u8>) -> Vec<u8> {
        self.assert_member(group, "group_bcast");
        let root = group.root();
        if self.rank() == root {
            let shared: Arc<[u8]> = payload.as_slice().into();
            for dst in group.iter().filter(|&r| r != root) {
                self.send_ctl_payload(dst, TAG_BCAST, Payload::Shared(Arc::clone(&shared)));
            }
            payload
        } else {
            self.recv(root, TAG_BCAST)
        }
    }

    /// [`Ctx::group_bcast`] without the receive-side copy: every member
    /// (root included) returns a clone of the *same* shared allocation,
    /// whose identity can key [`crate::World::decode_shared`]. Wire
    /// traffic and clocks are identical to [`Ctx::group_bcast`].
    pub fn group_bcast_shared(&mut self, group: &RankSet, payload: Vec<u8>) -> Arc<[u8]> {
        self.assert_member(group, "group_bcast");
        let root = group.root();
        if self.rank() == root {
            let shared: Arc<[u8]> = payload.into();
            for dst in group.iter().filter(|&r| r != root) {
                self.send_ctl_payload(dst, TAG_BCAST, Payload::Shared(Arc::clone(&shared)));
            }
            shared
        } else {
            self.recv_shared(root, TAG_BCAST)
        }
    }

    /// All-gather: every member returns all members' payloads in group
    /// order. Implemented as gather + bcast of the concatenation.
    pub fn group_allgather(&mut self, group: &RankSet, payload: Vec<u8>) -> Vec<Vec<u8>> {
        let packed = self.group_allgather_shared(group, payload);
        let mut r = Reader::new(&packed);
        let n = r.u64() as usize;
        let lens: Vec<usize> = (0..n).map(|_| r.u64() as usize).collect();
        let parts = lens.iter().map(|&len| r.bytes(len).to_vec()).collect();
        r.finish();
        parts
    }

    /// [`Ctx::group_allgather`], returning the packed concatenation as
    /// one shared buffer instead of splitting it into per-member copies:
    /// a `u64` member count, the `u64` length of each part, then the
    /// parts back to back ([`Ctx::allgather_parts`] iterates them).
    /// Every member returns a clone of the same allocation, so decoding
    /// can be done once per world ([`crate::World::decode_shared`])
    /// instead of once per rank — the difference between O(n) and O(n²)
    /// total work for the metadata exchanges at 10k+ ranks.
    pub fn group_allgather_shared(&mut self, group: &RankSet, payload: Vec<u8>) -> Arc<[u8]> {
        self.assert_member(group, "group_allgather");
        let gathered = self.group_gather(group, payload);
        if let Some(parts) = gathered {
            let mut buf = Vec::new();
            put_u64(&mut buf, parts.len() as u64);
            for p in &parts {
                put_u64(&mut buf, p.len() as u64);
            }
            for p in &parts {
                buf.extend_from_slice(p);
            }
            self.group_bcast_shared(group, buf)
        } else {
            self.group_bcast_shared(group, Vec::new())
        }
    }

    /// Iterates the per-member parts of a packed all-gather buffer
    /// (as produced by [`Ctx::group_allgather_shared`]) without copying
    /// them out.
    ///
    /// # Panics
    /// Panics if the buffer is not a well-formed packed all-gather.
    pub fn allgather_parts(packed: &[u8]) -> impl Iterator<Item = &[u8]> {
        let mut r = Reader::new(packed);
        let n = r.u64() as usize;
        let lens: Vec<usize> = (0..n).map(|_| r.u64() as usize).collect();
        lens.into_iter().map(move |len| r.bytes(len))
    }

    /// All-reduce max over one `f64` per member.
    ///
    /// The fold over the gathered values is computed once per world and
    /// shared between the members (they all hold the same packed buffer),
    /// so a 10k-rank reduction costs one O(n) pass, not n of them.
    pub fn group_allreduce_max_f64(&mut self, group: &RankSet, value: f64) -> f64 {
        let packed = self.group_allgather_shared(group, encode_f64(value));
        *self.world().decode_shared(&packed, |bytes| {
            Ctx::allgather_parts(bytes)
                .map(decode_f64)
                .fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Synchronizes clocks across the group: every member leaves with
    /// clock = max(entry clocks), which is also returned. Phase-based
    /// drivers call this before charging a jointly computed duration.
    pub fn group_sync_clocks(&mut self, group: &RankSet) -> VTime {
        self.group_barrier(group);
        self.clock()
    }

    /// Personalized all-to-all within a group (data plane): `sends` maps
    /// each destination to a payload; `recv_from` lists the sources this
    /// rank expects a message from. Both sides of the exchange must be
    /// derivable from shared metadata — in collective I/O they always
    /// are. Self-sends short-circuit locally. Returns `(src, payload)`
    /// pairs in `recv_from` order.
    ///
    /// The exchange is uncosted (callers price the whole phase
    /// analytically) but is counted in the traffic statistics.
    ///
    /// # Panics
    /// Panics if a destination or source is outside the group.
    pub fn exchange(
        &mut self,
        group: &RankSet,
        sends: Vec<(usize, Vec<u8>)>,
        recv_from: &[usize],
    ) -> Vec<(usize, Vec<u8>)> {
        self.assert_member(group, "exchange");
        let me = self.rank();
        let mut self_payload = None;
        for (dst, payload) in sends {
            assert!(
                group.contains(dst),
                "exchange destination {dst} outside group"
            );
            if dst == me {
                assert!(
                    self_payload.is_none(),
                    "multiple self-sends in one exchange"
                );
                self_payload = Some(payload);
            } else {
                self.account_exchange(dst, payload.len() as u64);
                self.send_ctl(dst, TAG_EXCHANGE, payload);
            }
        }
        let mut received = Vec::with_capacity(recv_from.len());
        for &src in recv_from {
            assert!(group.contains(src), "exchange source {src} outside group");
            if src == me {
                let payload = self_payload
                    .take()
                    .expect("recv_from lists self but sends has no self-payload");
                received.push((me, payload));
            } else {
                received.push((src, self.recv(src, TAG_EXCHANGE)));
            }
        }
        assert!(
            self_payload.is_none(),
            "self-send payload was never received (missing self in recv_from)"
        );
        received
    }

    fn account_exchange(&self, dst: usize, bytes: u64) {
        let dst_node = self.placement().node_of(dst);
        self.world()
            .traffic()
            .account_data(self.node(), dst_node, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::World;
    use mccio_sim::cost::CostModel;
    use mccio_sim::time::VDuration;
    use mccio_sim::topology::{test_cluster, FillOrder, Placement};
    use std::sync::Arc;

    use crate::engine::ExecutorKind;

    const BOTH: [ExecutorKind; 2] = [ExecutorKind::Threads, ExecutorKind::Event];

    fn world_with(nodes: usize, cores: usize, ranks: usize, kind: ExecutorKind) -> Arc<World> {
        let cluster = test_cluster(nodes, cores);
        let placement = Placement::new(&cluster, ranks, FillOrder::Block).unwrap();
        World::with_executor(CostModel::new(cluster), placement, kind)
    }

    fn world(nodes: usize, cores: usize, ranks: usize) -> Arc<World> {
        world_with(nodes, cores, ranks, ExecutorKind::Threads)
    }

    #[test]
    fn barrier_syncs_clocks_to_max() {
        for kind in BOTH {
            let w = world_with(2, 2, 4, kind);
            let clocks = w.run(|ctx| {
                ctx.advance(VDuration::from_secs(ctx.rank() as f64));
                ctx.barrier();
                ctx.clock().as_secs()
            });
            for c in clocks {
                assert!((c - 3.0).abs() < 1e-12, "clock {c}");
            }
        }
    }

    #[test]
    fn gather_collects_in_group_order() {
        let w = world(1, 4, 4);
        let r = w.run(|ctx| {
            let group = RankSet::new(vec![3, 1, 0]);
            if !group.contains(ctx.rank()) {
                return None;
            }
            ctx.group_gather(&group, vec![ctx.rank() as u8])
        });
        assert_eq!(
            r[0],
            Some(vec![vec![0u8], vec![1u8], vec![3u8]]),
            "root is rank 0 and sees group order"
        );
        assert_eq!(r[1], None);
        assert_eq!(r[3], None);
    }

    #[test]
    fn bcast_distributes_root_payload() {
        for kind in BOTH {
            let w = world_with(2, 2, 4, kind);
            let r = w.run(|ctx| {
                let group = RankSet::world(ctx.size());
                let payload = if ctx.rank() == 0 {
                    b"hello".to_vec()
                } else {
                    vec![]
                };
                ctx.group_bcast(&group, payload)
            });
            for p in r {
                assert_eq!(p, b"hello");
            }
        }
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        for kind in BOTH {
            let w = world_with(2, 2, 4, kind);
            let r = w.run(|ctx| {
                let group = RankSet::world(ctx.size());
                ctx.group_allgather(&group, vec![ctx.rank() as u8; ctx.rank() + 1])
            });
            for parts in r {
                assert_eq!(parts.len(), 4);
                for (i, p) in parts.iter().enumerate() {
                    assert_eq!(p, &vec![i as u8; i + 1]);
                }
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let w = world(1, 4, 4);
        let r = w.run(|ctx| {
            let group = RankSet::world(ctx.size());
            ctx.group_allreduce_max_f64(&group, ctx.rank() as f64 * 1.5)
        });
        for v in r {
            assert_eq!(v, 4.5);
        }
    }

    #[test]
    fn disjoint_group_collectives_run_concurrently() {
        let w = world(2, 2, 4);
        let r = w.run(|ctx| {
            let group = if ctx.rank() < 2 {
                RankSet::new(vec![0, 1])
            } else {
                RankSet::new(vec![2, 3])
            };
            let all = ctx.group_allgather(&group, vec![ctx.rank() as u8]);
            all.into_iter().map(|p| p[0]).collect::<Vec<_>>()
        });
        assert_eq!(r[0], vec![0, 1]);
        assert_eq!(r[1], vec![0, 1]);
        assert_eq!(r[2], vec![2, 3]);
        assert_eq!(r[3], vec![2, 3]);
    }

    #[test]
    fn exchange_delivers_personalized_payloads() {
        for kind in BOTH {
            exchange_case(kind);
        }
    }

    fn exchange_case(kind: ExecutorKind) {
        let w = world_with(2, 2, 4, kind);
        let r = w.run(|ctx| {
            let group = RankSet::world(ctx.size());
            let me = ctx.rank();
            // Everyone sends one byte [me*10+dst] to every rank (self included).
            let sends: Vec<(usize, Vec<u8>)> = (0..4)
                .map(|dst| (dst, vec![(me * 10 + dst) as u8]))
                .collect();
            let recv_from: Vec<usize> = (0..4).collect();
            let got = ctx.exchange(&group, sends, &recv_from);
            got.into_iter()
                .map(|(src, p)| (src, p[0]))
                .collect::<Vec<_>>()
        });
        for (me, got) in r.into_iter().enumerate() {
            for (i, (src, byte)) in got.into_iter().enumerate() {
                assert_eq!(src, i);
                assert_eq!(byte as usize, src * 10 + me);
            }
        }
    }

    #[test]
    fn exchange_counts_traffic() {
        let w = world(2, 2, 4);
        let _ = w.run(|ctx| {
            let group = RankSet::world(ctx.size());
            if ctx.rank() == 0 {
                let got = ctx.exchange(&group, vec![(2, vec![0u8; 100])], &[]);
                assert!(got.is_empty());
            } else if ctx.rank() == 2 {
                let _ = ctx.exchange(&group, vec![], &[0]);
            } else {
                let _ = ctx.exchange(&group, vec![], &[]);
            }
        });
        let t = w.traffic().snapshot();
        assert_eq!(t.inter_bytes, 100);
        assert_eq!(t.node_egress[0], 100);
        assert_eq!(t.node_ingress[1], 100);
    }

    #[test]
    // The member assertion fires on the rank thread; World::run
    // propagates it as a generic scoped-thread panic.
    #[should_panic(expected = "a scoped thread panicked")]
    fn non_member_collective_is_a_bug() {
        let w = world(1, 2, 2);
        let _ = w.run(|ctx| {
            let group = RankSet::new(vec![0]);
            ctx.group_barrier(&group); // rank 1 panics
        });
    }
}
