//! # mccio-net — SPMD rank engine with virtual-time message passing
//!
//! MPI bindings for Rust are immature and the reproduction needs no real
//! cluster: collective I/O is a data-movement algorithm whose correctness
//! and traffic pattern are fully exercised in-process. This crate runs
//! one closure per rank ([`World::run`]) under either of two executors
//! ([`ExecutorKind`]) — one OS thread per rank, or a discrete-event
//! cooperative scheduler that scales to 100k ranks on a single thread —
//! gives each rank a [`Ctx`] with point-to-point messaging and MPI-style
//! collectives over arbitrary [`RankSet`]s, and keeps a *virtual* clock
//! per rank:
//!
//! * **data-plane** sends ([`Ctx::send`]) are priced by the
//!   [`mccio_sim::CostModel`] point-to-point rule — the sender pays
//!   injection overhead, the receiver pays latency + transfer;
//! * **control-plane** sends ([`Ctx::send_ctl`]) and all collectives move
//!   driver metadata: they enforce causality (a receiver can never
//!   observe a message "before" it was sent) but charge no transfer time,
//!   because collective-I/O drivers price whole shuffle rounds
//!   analytically with [`mccio_sim::CostModel::shuffle_phase`] — that
//!   keeps virtual time deterministic regardless of thread scheduling;
//! * the [`engine::Traffic`] counters record every byte either way, so
//!   experiments can report shuffle volumes and per-node NIC pressure.
//!
//! Message matching follows MPI semantics: receives match on
//! `(source, tag)` with non-overtaking order per pair, and `ANY_SOURCE`
//! receives take the earliest delivered match.

#![warn(missing_docs)]

pub mod collective;
pub mod engine;
mod executor;
pub mod group;
pub mod mailbox;
pub mod recycle;
pub mod wire;

pub use collective::INTERNAL_TAG_BASE;
pub use engine::{Ctx, ExecutorKind, Traffic, TrafficSnapshot, World};
pub use executor::{slab_stats, SlabStats};
pub use group::RankSet;
pub use recycle::{BytePool, RecycleStats};
