//! Tiny, dependency-free binary encoding for control payloads.
//!
//! Collective-I/O drivers exchange small structured values (offset lists,
//! clocks, exchange matrices) alongside bulk data. Everything on the wire
//! is little-endian and length-prefixed where needed; these helpers keep
//! encode/decode symmetric and panic loudly on malformed input, which in a
//! closed simulator always means a driver bug rather than untrusted data.

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` in little-endian order.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a slice of `u64` with a leading count.
#[must_use]
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + values.len() * 8);
    put_u64(&mut buf, values.len() as u64);
    for &v in values {
        put_u64(&mut buf, v);
    }
    buf
}

/// Encodes an `f64`.
#[must_use]
pub fn encode_f64(v: f64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

/// A cursor for decoding payloads produced by the `put_*`/`encode_*`
/// helpers.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a payload.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Reads the next `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> u64 {
        let bytes: [u8; 8] = self.buf[self.pos..self.pos + 8]
            .try_into()
            .expect("8 bytes for u64");
        self.pos += 8;
        u64::from_le_bytes(bytes)
    }

    /// Reads the next `f64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> f64 {
        let bytes: [u8; 8] = self.buf[self.pos..self.pos + 8]
            .try_into()
            .expect("8 bytes for f64");
        self.pos += 8;
        f64::from_le_bytes(bytes)
    }

    /// Reads a count-prefixed `u64` list (the inverse of
    /// [`encode_u64s`]).
    pub fn u64s(&mut self) -> Vec<u64> {
        let n = self.u64() as usize;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Reads `n` raw bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Remaining unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was fully consumed — catches drivers that
    /// disagree about a message layout.
    pub fn finish(self) {
        assert_eq!(
            self.remaining(),
            0,
            "payload has {} undecoded trailing bytes",
            self.remaining()
        );
    }
}

/// Decodes a single `f64` payload (the inverse of [`encode_f64`]).
#[must_use]
pub fn decode_f64(buf: &[u8]) -> f64 {
    let mut r = Reader::new(buf);
    let v = r.f64();
    r.finish();
    v
}

/// Decodes a count-prefixed `u64` list payload.
#[must_use]
pub fn decode_u64s(buf: &[u8]) -> Vec<u64> {
    let mut r = Reader::new(buf);
    let v = r.u64s();
    r.finish();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let values = vec![0, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&values)), values);
        assert_eq!(decode_u64s(&encode_u64s(&[])), Vec::<u64>::new());
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, -1.5, f64::MAX, 1e-300] {
            assert_eq!(decode_f64(&encode_f64(v)), v);
        }
    }

    #[test]
    fn mixed_reader() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 7);
        put_f64(&mut buf, 2.5);
        buf.extend_from_slice(b"abc");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64(), 7);
        assert_eq!(r.f64(), 2.5);
        assert_eq!(r.bytes(3), b"abc");
        r.finish();
    }

    #[test]
    #[should_panic(expected = "trailing")]
    fn finish_rejects_leftover() {
        let buf = encode_u64s(&[1]);
        let mut r = Reader::new(&buf);
        let _ = r.u64();
        r.finish();
    }
}
