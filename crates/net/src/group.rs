//! Rank subsets ("subcommunicators").
//!
//! MC-CIO's whole point is to confine aggregation traffic within
//! disjoint subgroups, so every collective in this crate is defined over
//! a [`RankSet`]. The world communicator is just the full set.

/// An immutable, sorted, duplicate-free set of ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankSet {
    ranks: Vec<usize>,
}

impl RankSet {
    /// Builds a set from arbitrary rank ids; sorts and deduplicates.
    ///
    /// # Panics
    /// Panics if `ranks` is empty — a communicator needs at least one
    /// member.
    #[must_use]
    pub fn new(mut ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "empty rank set");
        ranks.sort_unstable();
        ranks.dedup();
        RankSet { ranks }
    }

    /// The full communicator `0..n`.
    #[must_use]
    pub fn world(n: usize) -> Self {
        RankSet::new((0..n).collect())
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Always false (construction rejects empty sets); present for
    /// clippy-idiomatic pairing with `len`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The designated root (smallest member).
    #[must_use]
    pub fn root(&self) -> usize {
        self.ranks[0]
    }

    /// Membership test (binary search).
    #[must_use]
    pub fn contains(&self, rank: usize) -> bool {
        self.ranks.binary_search(&rank).is_ok()
    }

    /// The position of `rank` within the set, if a member.
    #[must_use]
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.ranks.binary_search(&rank).ok()
    }

    /// Members in ascending order.
    #[must_use]
    pub fn members(&self) -> &[usize] {
        &self.ranks
    }

    /// Iterator over members.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranks.iter().copied()
    }

    /// True when the two sets share no members (the invariant aggregation
    /// groups must satisfy).
    #[must_use]
    pub fn is_disjoint(&self, other: &RankSet) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        !small.iter().any(|r| large.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_dedups() {
        let s = RankSet::new(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.members(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.root(), 1);
    }

    #[test]
    fn membership_and_index() {
        let s = RankSet::new(vec![2, 4, 8]);
        assert!(s.contains(4));
        assert!(!s.contains(3));
        assert_eq!(s.index_of(8), Some(2));
        assert_eq!(s.index_of(0), None);
    }

    #[test]
    fn world_covers_all() {
        let s = RankSet::world(4);
        assert_eq!(s.members(), &[0, 1, 2, 3]);
        assert!(!s.is_empty());
    }

    #[test]
    fn disjointness() {
        let a = RankSet::new(vec![0, 1, 2]);
        let b = RankSet::new(vec![3, 4]);
        let c = RankSet::new(vec![2, 3]);
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        assert!(!a.is_disjoint(&c));
        assert!(!c.is_disjoint(&b));
    }

    #[test]
    #[should_panic(expected = "empty rank set")]
    fn empty_set_rejected() {
        let _ = RankSet::new(vec![]);
    }
}
